//===- bench_solver.cpp - Solver ablations (DESIGN.md) ----------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Ablation of the lp_solve-substitute (DESIGN.md "Design choices worth
// ablating"): the univariate fast path vs. the general Fourier-Motzkin
// pipeline, and solver throughput on the constraint shapes DART's
// workloads generate (input filters = univariate equality chains; protocol
// state = small multivariate systems).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "concolic/PathSearch.h"
#include "solver/LinearSolver.h"
#include "symbolic/PredArena.h"
#include "workloads/Workloads.h"

#include <chrono>

using namespace dart;
using namespace dart::bench;

namespace {

std::function<VarDomain(InputId)> intDomains() {
  return [](InputId) { return VarDomain{INT32_MIN, INT32_MAX}; };
}

/// The constraint shape of an input filter at depth k: a chain of
/// equalities/disequalities on one variable per level.
std::vector<SymPred> filterChain(unsigned Length) {
  std::vector<SymPred> Cs;
  for (unsigned I = 0; I < Length; ++I) {
    auto L = *LinearExpr::variable(I).add(LinearExpr(-int64_t(I) - 3));
    Cs.push_back(SymPred(I % 2 ? CmpPred::Ne : CmpPred::Eq, L));
  }
  return Cs;
}

/// A small multivariate system (protocol-state shape).
std::vector<SymPred> multivariate(unsigned Vars) {
  std::vector<SymPred> Cs;
  for (unsigned I = 0; I + 1 < Vars; ++I) {
    auto Diff = *LinearExpr::variable(I).sub(LinearExpr::variable(I + 1));
    Cs.push_back(SymPred(CmpPred::Lt, Diff)); // x_i < x_{i+1}
  }
  auto Sum = LinearExpr(0);
  for (unsigned I = 0; I < Vars; ++I)
    Sum = *Sum.add(LinearExpr::variable(I));
  Cs.push_back(SymPred(CmpPred::Ge, *Sum.add(LinearExpr(-100))));
  return Cs;
}

void printTable() {
  printHeader("Solver ablation - univariate fast path (DESIGN.md)");
  std::printf("%-30s %-14s %-14s\n", "system", "fast path", "general path");
  for (unsigned Len : {1u, 4u, 16u, 64u}) {
    auto Cs = filterChain(Len);
    SolverOptions Fast, Slow;
    Slow.EnableFastPath = false;
    std::map<InputId, int64_t> Model;
    LinearSolver SF(Fast), SS(Slow);
    auto Time = [&](LinearSolver &S) {
      auto T0 = std::chrono::steady_clock::now();
      for (int I = 0; I < 1000; ++I)
        S.solve(Cs, intDomains(), {}, Model);
      return std::chrono::duration<double, std::micro>(
                 std::chrono::steady_clock::now() - T0)
                 .count() /
             1000.0;
    };
    double TF = Time(SF), TS = Time(SS);
    char Name[48];
    std::snprintf(Name, sizeof(Name), "filter chain, %u constraints", Len);
    std::printf("%-30s %10.2f us %10.2f us  (%.1fx)\n", Name, TF, TS,
                TS / TF);
  }
}

/// A recorded path of \p Depth univariate disequalities over eight inputs —
/// the shape solve_path_constraint probes: a long shared prefix, every
/// negation satisfiable.
PathData deepPath(PredArena &Arena, unsigned Depth) {
  PathData P;
  for (unsigned I = 0; I < Depth; ++I) {
    auto L = *LinearExpr::variable(I % 8).add(LinearExpr(-int64_t(I) - 40));
    P.Stack.push_back({true, false, I});
    P.Constraints.push_back(Arena.intern(SymPred(CmpPred::Ne, L)));
  }
  return P;
}

/// Mean microseconds per solveCandidates batch over \p P with the
/// incremental-session lever set to \p Incremental.
double timeCandidates(const PathData &P, PredArena &Arena, bool Incremental,
                      const std::map<InputId, int64_t> &Hint) {
  SolverOptions Opts;
  Opts.IncrementalSessions = Incremental;
  LinearSolver S(Opts);
  Rng R(1);
  auto Domains = intDomains();
  auto Once = [&] {
    CandidateSet Set = solveCandidates(P, Arena, S, Domains, Hint,
                                       SearchStrategy::DepthFirst, R, 0);
    benchmark::DoNotOptimize(Set.Candidates.size());
  };
  Once(); // warm the arena's negation links
  const unsigned Iters = 300;
  auto T0 = std::chrono::steady_clock::now();
  for (unsigned I = 0; I < Iters; ++I)
    Once();
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - T0)
             .count() /
         Iters;
}

struct IncrementalRow {
  unsigned Depth = 0;
  unsigned Candidates = 0;
  double BatchUs = 0.0;
  double IncrementalUs = 0.0;
};

void writeIncrementalJson(const std::string &Path,
                          const std::vector<IncrementalRow> &Rows) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    return;
  }
  std::fprintf(F,
               "{\n  \"experiment\": \"solver_incremental\",\n"
               "  \"results\": [\n");
  for (size_t I = 0; I < Rows.size(); ++I) {
    const IncrementalRow &R = Rows[I];
    std::fprintf(F,
                 "    {\"depth\": %u, \"candidates\": %u, "
                 "\"batch_us\": %.3f, \"incremental_us\": %.3f, "
                 "\"speedup\": %.2f}%s\n",
                 R.Depth, R.Candidates, R.BatchUs, R.IncrementalUs,
                 R.BatchUs / R.IncrementalUs,
                 I + 1 < Rows.size() ? "," : "");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  std::printf("wrote %s\n", Path.c_str());
}

/// The tentpole's headline axis: per-candidate renormalization (batch) vs
/// prefix-reusing sessions, over path depth x flippable-candidate count.
void incrementalGrid() {
  printHeader("Incremental sessions vs batch renormalization "
              "(solveCandidates)");
  std::printf("%-8s %-12s %-14s %-14s %-8s\n", "depth", "candidates",
              "batch", "incremental", "speedup");
  std::vector<IncrementalRow> Rows;
  std::map<InputId, int64_t> Hint;
  for (InputId V = 0; V < 8; ++V)
    Hint[V] = 1;
  for (unsigned Depth : {16u, 64u, 128u}) {
    for (unsigned Cands : {1u, 8u, 32u}) {
      if (Cands > Depth)
        continue;
      PredArena Arena;
      PathData P = deepPath(Arena, Depth);
      // Only the deepest Cands branches are still open: the common mid-
      // search shape (shallow flips already exhausted).
      for (unsigned I = 0; I + Cands < Depth; ++I)
        P.Stack[I].Done = true;
      IncrementalRow Row;
      Row.Depth = Depth;
      Row.Candidates = Cands;
      Row.BatchUs = timeCandidates(P, Arena, /*Incremental=*/false, Hint);
      Row.IncrementalUs = timeCandidates(P, Arena, /*Incremental=*/true,
                                         Hint);
      std::printf("%-8u %-12u %10.2f us %10.2f us  (%.1fx)\n", Depth, Cands,
                  Row.BatchUs, Row.IncrementalUs,
                  Row.BatchUs / Row.IncrementalUs);
      Rows.push_back(Row);
    }
  }
  writeIncrementalJson("BENCH_solver_incremental.json", Rows);
}

struct SliceRow {
  std::string Workload;
  unsigned Depth = 0;
  double FullMedian = 0.0;  ///< median conjuncts per query before slicing
  double SentMedian = 0.0;  ///< median conjuncts actually sent
  uint64_t FullPreds = 0;
  uint64_t SentPreds = 0;
  double ElapsedOnMs = 0.0;
  double ElapsedOffMs = 0.0;
};

void writeSliceJson(const std::string &Path,
                    const std::vector<SliceRow> &Rows) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    return;
  }
  std::fprintf(F, "{\n  \"experiment\": \"solver_slice\",\n  \"results\": [\n");
  for (size_t I = 0; I < Rows.size(); ++I) {
    const SliceRow &R = Rows[I];
    std::fprintf(
        F,
        "    {\"workload\": \"%s\", \"depth\": %u, "
        "\"median_preds_full\": %.1f, \"median_preds_sent\": %.1f, "
        "\"median_reduction\": %.2f, \"preds_full\": %llu, "
        "\"preds_sent\": %llu, \"elapsed_on_ms\": %.1f, "
        "\"elapsed_off_ms\": %.1f}%s\n",
        R.Workload.c_str(), R.Depth, R.FullMedian, R.SentMedian,
        R.SentMedian > 0 ? R.FullMedian / R.SentMedian : 0.0,
        (unsigned long long)R.FullPreds, (unsigned long long)R.SentPreds,
        R.ElapsedOnMs, R.ElapsedOffMs, I + 1 < Rows.size() ? "," : "");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  std::printf("wrote %s\n", Path.c_str());
}

/// Sliced vs full-prefix queries (--slice) over whole DART sessions: the
/// search is observably identical either way (tests/slice_diff_test.cpp),
/// so the axis is pure query-size and wall-clock. The protocol workload's
/// per-call scalar messages slice hard; the SIP parser's global state
/// couples calls, so its sound slices stay larger.
void sliceGrid() {
  printHeader("Sliced vs full solver queries (--slice, whole sessions)");
  std::printf("%-24s %-6s %-12s %-12s %-10s %-12s %-12s\n", "workload",
              "depth", "median full", "median sent", "reduction", "on",
              "off");
  struct Scenario {
    const char *Name;
    std::string Source;
    const char *Toplevel;
    unsigned Depth;
    uint64_t Seed;
    unsigned MaxRuns;
  };
  std::vector<Scenario> Scenarios = {
      {"ac_controller", workloads::acControllerSource(), "ac_controller", 8,
       2005, 1500},
      {"minisip_receive", workloads::miniSipSource(), "sip_receive", 32, 11,
       400},
  };
  std::vector<SliceRow> Rows;
  for (const Scenario &S : Scenarios) {
    auto D = compileOrDie(S.Source, S.Name);
    auto Run = [&](bool Slice, SolverStats &Stats) {
      DartOptions Opts;
      Opts.ToplevelName = S.Toplevel;
      Opts.Depth = S.Depth;
      Opts.Seed = S.Seed;
      Opts.MaxRuns = S.MaxRuns;
      Opts.StopAtFirstError = false;
      Opts.Solver.SliceQueries = Slice;
      auto T0 = std::chrono::steady_clock::now();
      DartReport R = D->run(Opts);
      Stats = R.Solver;
      return std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - T0)
          .count();
    };
    SliceRow Row;
    Row.Workload = S.Name;
    Row.Depth = S.Depth;
    SolverStats On, Off;
    // Interleave a warmup pair so neither mode pays first-touch costs.
    Run(true, On);
    Run(false, Off);
    Row.ElapsedOnMs = Run(true, On);
    Row.ElapsedOffMs = Run(false, Off);
    Row.FullMedian = SolverStats::histogramMedian(On.QuerySizeFull);
    Row.SentMedian = SolverStats::histogramMedian(On.QuerySizeSent);
    Row.FullPreds = On.SliceFullPreds;
    Row.SentPreds = On.SliceSentPreds;
    std::printf("%-24s %-6u %11.1f %11.1f %9.2fx %9.1f ms %9.1f ms\n",
                S.Name, S.Depth, Row.FullMedian, Row.SentMedian,
                Row.SentMedian > 0 ? Row.FullMedian / Row.SentMedian : 0.0,
                Row.ElapsedOnMs, Row.ElapsedOffMs);
    Rows.push_back(std::move(Row));
  }
  writeSliceJson("BENCH_slice.json", Rows);
}

void BM_SolveCandidatesBatchD64C8(benchmark::State &State) {
  PredArena Arena;
  PathData P = deepPath(Arena, 64);
  for (unsigned I = 0; I + 8 < 64; ++I)
    P.Stack[I].Done = true;
  SolverOptions Opts;
  Opts.IncrementalSessions = false;
  LinearSolver S(Opts);
  Rng R(1);
  auto Domains = intDomains();
  for (auto _ : State)
    benchmark::DoNotOptimize(solveCandidates(
        P, Arena, S, Domains, {}, SearchStrategy::DepthFirst, R, 0));
}
BENCHMARK(BM_SolveCandidatesBatchD64C8);

void BM_SolveCandidatesSessionD64C8(benchmark::State &State) {
  PredArena Arena;
  PathData P = deepPath(Arena, 64);
  for (unsigned I = 0; I + 8 < 64; ++I)
    P.Stack[I].Done = true;
  LinearSolver S;
  Rng R(1);
  auto Domains = intDomains();
  for (auto _ : State)
    benchmark::DoNotOptimize(solveCandidates(
        P, Arena, S, Domains, {}, SearchStrategy::DepthFirst, R, 0));
}
BENCHMARK(BM_SolveCandidatesSessionD64C8);

void BM_SolverFastPathFilter16(benchmark::State &State) {
  auto Cs = filterChain(16);
  LinearSolver S;
  std::map<InputId, int64_t> Model;
  for (auto _ : State)
    benchmark::DoNotOptimize(S.solve(Cs, intDomains(), {}, Model));
}
BENCHMARK(BM_SolverFastPathFilter16);

void BM_SolverGeneralFilter16(benchmark::State &State) {
  auto Cs = filterChain(16);
  SolverOptions Opts;
  Opts.EnableFastPath = false;
  LinearSolver S(Opts);
  std::map<InputId, int64_t> Model;
  for (auto _ : State)
    benchmark::DoNotOptimize(S.solve(Cs, intDomains(), {}, Model));
}
BENCHMARK(BM_SolverGeneralFilter16);

void BM_SolverFourierMotzkin8Vars(benchmark::State &State) {
  auto Cs = multivariate(8);
  LinearSolver S;
  std::map<InputId, int64_t> Model;
  for (auto _ : State)
    benchmark::DoNotOptimize(S.solve(Cs, intDomains(), {}, Model));
}
BENCHMARK(BM_SolverFourierMotzkin8Vars);

void BM_SolverDisequalityBranching(benchmark::State &State) {
  // x + y == 0, x != 0, y != 5: forces disequality branching.
  std::vector<SymPred> Cs;
  auto Sum = *LinearExpr::variable(0).add(LinearExpr::variable(1));
  Cs.push_back(SymPred(CmpPred::Eq, Sum));
  Cs.push_back(SymPred(CmpPred::Ne, LinearExpr::variable(0)));
  Cs.push_back(
      SymPred(CmpPred::Ne, *LinearExpr::variable(1).add(LinearExpr(-5))));
  LinearSolver S;
  std::map<InputId, int64_t> Model;
  for (auto _ : State)
    benchmark::DoNotOptimize(S.solve(Cs, intDomains(), {}, Model));
}
BENCHMARK(BM_SolverDisequalityBranching);

} // namespace

int main(int argc, char **argv) {
  printTable();
  incrementalGrid();
  sliceGrid();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
