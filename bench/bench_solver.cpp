//===- bench_solver.cpp - Solver ablations (DESIGN.md) ----------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Ablation of the lp_solve-substitute (DESIGN.md "Design choices worth
// ablating"): the univariate fast path vs. the general Fourier-Motzkin
// pipeline, and solver throughput on the constraint shapes DART's
// workloads generate (input filters = univariate equality chains; protocol
// state = small multivariate systems).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "solver/LinearSolver.h"

#include <chrono>

using namespace dart;
using namespace dart::bench;

namespace {

std::function<VarDomain(InputId)> intDomains() {
  return [](InputId) { return VarDomain{INT32_MIN, INT32_MAX}; };
}

/// The constraint shape of an input filter at depth k: a chain of
/// equalities/disequalities on one variable per level.
std::vector<SymPred> filterChain(unsigned Length) {
  std::vector<SymPred> Cs;
  for (unsigned I = 0; I < Length; ++I) {
    auto L = *LinearExpr::variable(I).add(LinearExpr(-int64_t(I) - 3));
    Cs.push_back(SymPred(I % 2 ? CmpPred::Ne : CmpPred::Eq, L));
  }
  return Cs;
}

/// A small multivariate system (protocol-state shape).
std::vector<SymPred> multivariate(unsigned Vars) {
  std::vector<SymPred> Cs;
  for (unsigned I = 0; I + 1 < Vars; ++I) {
    auto Diff = *LinearExpr::variable(I).sub(LinearExpr::variable(I + 1));
    Cs.push_back(SymPred(CmpPred::Lt, Diff)); // x_i < x_{i+1}
  }
  auto Sum = LinearExpr(0);
  for (unsigned I = 0; I < Vars; ++I)
    Sum = *Sum.add(LinearExpr::variable(I));
  Cs.push_back(SymPred(CmpPred::Ge, *Sum.add(LinearExpr(-100))));
  return Cs;
}

void printTable() {
  printHeader("Solver ablation - univariate fast path (DESIGN.md)");
  std::printf("%-30s %-14s %-14s\n", "system", "fast path", "general path");
  for (unsigned Len : {1u, 4u, 16u, 64u}) {
    auto Cs = filterChain(Len);
    SolverOptions Fast, Slow;
    Slow.EnableFastPath = false;
    std::map<InputId, int64_t> Model;
    LinearSolver SF(Fast), SS(Slow);
    auto Time = [&](LinearSolver &S) {
      auto T0 = std::chrono::steady_clock::now();
      for (int I = 0; I < 1000; ++I)
        S.solve(Cs, intDomains(), {}, Model);
      return std::chrono::duration<double, std::micro>(
                 std::chrono::steady_clock::now() - T0)
                 .count() /
             1000.0;
    };
    double TF = Time(SF), TS = Time(SS);
    char Name[48];
    std::snprintf(Name, sizeof(Name), "filter chain, %u constraints", Len);
    std::printf("%-30s %10.2f us %10.2f us  (%.1fx)\n", Name, TF, TS,
                TS / TF);
  }
}

void BM_SolverFastPathFilter16(benchmark::State &State) {
  auto Cs = filterChain(16);
  LinearSolver S;
  std::map<InputId, int64_t> Model;
  for (auto _ : State)
    benchmark::DoNotOptimize(S.solve(Cs, intDomains(), {}, Model));
}
BENCHMARK(BM_SolverFastPathFilter16);

void BM_SolverGeneralFilter16(benchmark::State &State) {
  auto Cs = filterChain(16);
  SolverOptions Opts;
  Opts.EnableFastPath = false;
  LinearSolver S(Opts);
  std::map<InputId, int64_t> Model;
  for (auto _ : State)
    benchmark::DoNotOptimize(S.solve(Cs, intDomains(), {}, Model));
}
BENCHMARK(BM_SolverGeneralFilter16);

void BM_SolverFourierMotzkin8Vars(benchmark::State &State) {
  auto Cs = multivariate(8);
  LinearSolver S;
  std::map<InputId, int64_t> Model;
  for (auto _ : State)
    benchmark::DoNotOptimize(S.solve(Cs, intDomains(), {}, Model));
}
BENCHMARK(BM_SolverFourierMotzkin8Vars);

void BM_SolverDisequalityBranching(benchmark::State &State) {
  // x + y == 0, x != 0, y != 5: forces disequality branching.
  std::vector<SymPred> Cs;
  auto Sum = *LinearExpr::variable(0).add(LinearExpr::variable(1));
  Cs.push_back(SymPred(CmpPred::Eq, Sum));
  Cs.push_back(SymPred(CmpPred::Ne, LinearExpr::variable(0)));
  Cs.push_back(
      SymPred(CmpPred::Ne, *LinearExpr::variable(1).add(LinearExpr(-5))));
  LinearSolver S;
  std::map<InputId, int64_t> Model;
  for (auto _ : State)
    benchmark::DoNotOptimize(S.solve(Cs, intDomains(), {}, Model));
}
BENCHMARK(BM_SolverDisequalityBranching);

} // namespace

int main(int argc, char **argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
