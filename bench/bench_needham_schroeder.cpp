//===- bench_needham_schroeder.cpp - Reproduces paper Figs. 9 & 10 ---------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Paper Fig. 9 (possibilistic intruder):
//   depth 1: no error, 69 runs (< 1 s); depth 2: error, 664 runs (2 s);
//   random search: nothing after hours.
// Paper Fig. 10 (Dolev-Yao intruder):
//   depth 1: no error, 5 runs; depth 2: no error, 85 runs;
//   depth 3: no error, 6,260 runs (22 s); depth 4: error, 328,459 runs
//   (18 min) — the full Lowe attack.
// §4.2 also reports a bug DART found in an incomplete implementation of
// Lowe's fix; with the fix completed the attack disappears.
//
// The state-space sizes depend on the intruder model ("each variant can
// have a significant impact", §4.2); our model is tuned small like the
// paper's. Absolute run counts differ; the shape — error only at depth 2
// (possibilistic) / depth 4 (Dolev-Yao), exponential growth in depth,
// random search hopeless — reproduces.
//
// The depth-4 rows take minutes (as in the paper); enable them with
// DART_BENCH_FULL=1.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "workloads/Workloads.h"

using namespace dart;
using namespace dart::bench;
using workloads::LoweFix;
using workloads::NsConfig;

namespace {

void printPossibilisticTable() {
  NsConfig Config;
  auto D = compileOrDie(workloads::needhamSchroederSource(Config),
                        "NS (possibilistic)");
  printHeader("Fig. 9 - Needham-Schroeder, possibilistic intruder");
  std::printf("%-7s %-24s %s\n", "depth", "paper", "ours (directed)");
  const char *PaperRows[] = {"no error, 69 runs", "error, 664 runs"};
  for (unsigned Depth = 1; Depth <= 2; ++Depth) {
    DartReport R = session(*D, "ns_step", Depth, 200000);
    char Ours[64];
    std::snprintf(Ours, sizeof(Ours), "%s, %u runs",
                  R.BugFound ? "error" : "no error", R.Runs);
    std::printf("%-7u %-24s %s\n", Depth, PaperRows[Depth - 1], Ours);
  }
  DartReport Random = session(*D, "ns_step", 2, 100000, 5, true);
  std::printf("random: %s after %u runs (paper: nothing after hours)\n",
              Random.BugFound ? "error" : "no error", Random.Runs);
}

void printDolevYaoTable() {
  NsConfig Config;
  Config.DolevYao = true;
  auto D = compileOrDie(workloads::needhamSchroederSource(Config),
                        "NS (Dolev-Yao)");
  printHeader("Fig. 10 - Needham-Schroeder, Dolev-Yao intruder");
  std::printf("%-7s %-28s %s\n", "depth", "paper", "ours (directed)");
  const char *PaperRows[] = {"no error, 5 runs", "no error, 85 runs",
                             "no error, 6260 runs (22 s)",
                             "error, 328459 runs (18 min)"};
  unsigned MaxDepth = fullMode() ? 4 : 3;
  for (unsigned Depth = 1; Depth <= MaxDepth; ++Depth) {
    DartReport R = session(*D, "ns_step", Depth, 4000000);
    char Ours[64];
    std::snprintf(Ours, sizeof(Ours), "%s, %u runs",
                  R.BugFound ? "error" : "no error", R.Runs);
    std::printf("%-7u %-28s %s\n", Depth, PaperRows[Depth - 1], Ours);
    if (R.BugFound)
      std::printf("        Lowe's attack: %s\n",
                  R.Bugs[0].toString().c_str());
  }
  if (!fullMode())
    std::printf("%-7u %-28s %s\n", 4u, PaperRows[3],
                "(set DART_BENCH_FULL=1; measured: error, 1312026 runs, "
                "~5 min)");
}

void printLoweFixTable() {
  printHeader("Section 4.2 - Lowe's fix (incomplete vs. complete)");
  if (!fullMode()) {
    std::printf("Depth-4 searches; set DART_BENCH_FULL=1 to run.\n"
                "Measured: incomplete fix -> attack still found "
                "(paper: DART found the fix implementation incomplete);\n"
                "          complete fix  -> no attack within the budget.\n");
    return;
  }
  for (LoweFix Fix : {LoweFix::Incomplete, LoweFix::Full}) {
    NsConfig Config;
    Config.DolevYao = true;
    Config.Fix = Fix;
    auto D = compileOrDie(workloads::needhamSchroederSource(Config),
                          "NS (fix variant)");
    DartReport R = session(*D, "ns_step", 4, 4000000);
    std::printf("%-16s %s, %u runs\n",
                Fix == LoweFix::Incomplete ? "incomplete fix:"
                                           : "complete fix:",
                R.BugFound ? "error (attack survives)" : "no error",
                R.Runs);
  }
}

void BM_NsPossibilisticDepth2(benchmark::State &State) {
  NsConfig Config;
  auto D = compileOrDie(workloads::needhamSchroederSource(Config), "NS");
  for (auto _ : State) {
    DartReport R = session(*D, "ns_step", 2, 200000);
    State.counters["runs_to_bug"] = R.Runs;
  }
}
BENCHMARK(BM_NsPossibilisticDepth2);

void BM_NsDolevYaoDepth2(benchmark::State &State) {
  NsConfig Config;
  Config.DolevYao = true;
  auto D = compileOrDie(workloads::needhamSchroederSource(Config), "NS-DY");
  for (auto _ : State) {
    DartReport R = session(*D, "ns_step", 2, 200000);
    State.counters["runs"] = R.Runs;
  }
}
BENCHMARK(BM_NsDolevYaoDepth2);

} // namespace

int main(int argc, char **argv) {
  printPossibilisticTable();
  printDolevYaoTable();
  printLoweFixTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
