//===- BenchUtil.h - Shared helpers for experiment harnesses ----*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the bench/ binaries. Each binary regenerates one table
/// or figure of the paper's evaluation (§4): it prints the paper's rows
/// next to the reproduction's, then runs google-benchmark timings.
///
/// Set DART_BENCH_FULL=1 to include the long-running rows (the Dolev-Yao
/// depth-4 search takes minutes, as it did in the paper).
///
//===----------------------------------------------------------------------===//

#ifndef DART_BENCH_BENCHUTIL_H
#define DART_BENCH_BENCHUTIL_H

#include "core/Dart.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace dart::bench {

inline bool fullMode() {
  const char *Env = std::getenv("DART_BENCH_FULL");
  return Env && Env[0] == '1';
}

/// Peak resident set size of this process in MiB (0.0 where getrusage is
/// unavailable). Monotone over the process lifetime, so a row records the
/// high-water mark up to the point it was measured.
inline double peakRssMib() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage U;
  if (getrusage(RUSAGE_SELF, &U) != 0)
    return 0.0;
#if defined(__APPLE__)
  return double(U.ru_maxrss) / (1024.0 * 1024.0); // bytes
#else
  return double(U.ru_maxrss) / 1024.0; // KiB
#endif
#else
  return 0.0;
#endif
}

inline std::unique_ptr<Dart> compileOrDie(const std::string &Source,
                                          const char *What) {
  std::string Errors;
  auto D = Dart::fromSource(Source, &Errors);
  if (!D) {
    std::fprintf(stderr, "failed to compile %s:\n%s\n", What,
                 Errors.c_str());
    std::exit(1);
  }
  return D;
}

/// One DART session with the common experiment knobs.
inline DartReport session(const Dart &D, const std::string &Toplevel,
                          unsigned Depth, unsigned MaxRuns,
                          uint64_t Seed = 2005, bool RandomOnly = false) {
  DartOptions Opts;
  Opts.ToplevelName = Toplevel;
  Opts.Depth = Depth;
  Opts.MaxRuns = MaxRuns;
  Opts.Seed = Seed;
  Opts.RandomOnly = RandomOnly;
  return D.run(Opts);
}

inline void printHeader(const char *Title) {
  std::printf("\n================================================================\n"
              "%s\n"
              "================================================================\n",
              Title);
}

/// One row of the parallel-scaling experiment (worker-count axis).
struct ParallelBenchRow {
  unsigned Workers = 0;
  unsigned Runs = 0;
  double ElapsedSec = 0.0;
  double RunsPerSec = 0.0;
  double CacheHitRate = 0.0;
  double PeakRssMib = 0.0;
};

/// Fraction of solver queries answered from a shared Unsat cache — the
/// string-keyed batch cache plus the fingerprint-keyed session cache
/// (incremental mode routes its probes through the latter).
inline double cacheHitRate(const SolverStats &S) {
  uint64_t Hits = S.CacheHits + S.SessionCacheHits;
  uint64_t Total = Hits + S.CacheMisses + S.SessionCacheMisses;
  return Total ? double(Hits) / double(Total) : 0.0;
}

/// Emits the machine-readable scaling results (BENCH_parallel.json) that
/// EXPERIMENTS.md's table is generated from.
inline void writeParallelBenchJson(const std::string &Path,
                                   const std::string &Workload,
                                   const std::vector<ParallelBenchRow> &Rows) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    return;
  }
  std::fprintf(F, "{\n  \"workload\": \"%s\",\n  \"results\": [\n",
               Workload.c_str());
  for (size_t I = 0; I < Rows.size(); ++I) {
    const ParallelBenchRow &R = Rows[I];
    std::fprintf(F,
                 "    {\"workers\": %u, \"runs\": %u, "
                 "\"elapsed_sec\": %.6f, \"elapsed_ms\": %.3f, "
                 "\"runs_per_sec\": %.1f, "
                 "\"solver_cache_hit_rate\": %.4f, "
                 "\"peak_rss_mib\": %.1f}%s\n",
                 R.Workers, R.Runs, R.ElapsedSec, R.ElapsedSec * 1e3,
                 R.RunsPerSec, R.CacheHitRate,
                 R.PeakRssMib > 0.0 ? R.PeakRssMib : peakRssMib(),
                 I + 1 < Rows.size() ? "," : "");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  std::printf("wrote %s\n", Path.c_str());
}

/// One row of the static-prune ablation: the same directed session with
/// the dataflow pre-pass on and off.
struct StaticPruneRow {
  std::string Workload;
  uint64_t SolverCallsOn = 0;
  uint64_t SolverCallsOff = 0;
  unsigned Runs = 0;
  unsigned Coverage = 0;
  double ElapsedOnSec = 0.0;
  double ElapsedOffSec = 0.0;
  double PeakRssMib = 0.0;
  bool Identical = false; ///< runs/bugs/coverage match across the axis
};

/// Emits the machine-readable ablation results (BENCH_static_prune.json)
/// that EXPERIMENTS.md's static-prune table is generated from.
inline void writeStaticPruneJson(const std::string &Path,
                                 const std::vector<StaticPruneRow> &Rows) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    return;
  }
  std::fprintf(F, "{\n  \"axis\": \"static_prune\",\n  \"results\": [\n");
  for (size_t I = 0; I < Rows.size(); ++I) {
    const StaticPruneRow &R = Rows[I];
    std::fprintf(F,
                 "    {\"workload\": \"%s\", \"solver_calls_on\": %llu, "
                 "\"solver_calls_off\": %llu, \"runs\": %u, "
                 "\"coverage\": %u, \"elapsed_on_sec\": %.6f, "
                 "\"elapsed_off_sec\": %.6f, \"elapsed_on_ms\": %.3f, "
                 "\"elapsed_off_ms\": %.3f, \"peak_rss_mib\": %.1f, "
                 "\"identical_search\": %s}%s\n",
                 R.Workload.c_str(),
                 static_cast<unsigned long long>(R.SolverCallsOn),
                 static_cast<unsigned long long>(R.SolverCallsOff), R.Runs,
                 R.Coverage, R.ElapsedOnSec, R.ElapsedOffSec,
                 R.ElapsedOnSec * 1e3, R.ElapsedOffSec * 1e3,
                 R.PeakRssMib > 0.0 ? R.PeakRssMib : peakRssMib(),
                 R.Identical ? "true" : "false",
                 I + 1 < Rows.size() ? "," : "");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  std::printf("wrote %s\n", Path.c_str());
}

/// One row of the search-strategy ablation: one (workload, strategy,
/// worker count) cell. Wall-clock is the median of five interleaved
/// repetitions; runs-to-cover is the run index at which the session first
/// reached its own terminal coverage (from DartReport::CoverageTimeline).
struct StrategyRow {
  std::string Workload;
  std::string Strategy;
  unsigned Jobs = 1;
  unsigned Runs = 0;          ///< total runs the session performed
  unsigned RunsToCover = 0;   ///< runs to reach this row's terminal coverage
  unsigned Coverage = 0;      ///< terminal branch-direction coverage
  unsigned CoverageTotal = 0; ///< 2 * branch sites
  bool BugFound = false;
  bool StoppedEarly = false;  ///< coverable-direction early exit fired
  double MedianMs = 0.0;      ///< median-of-5 interleaved wall-clock
  double PeakRssMib = 0.0;
};

/// Emits the machine-readable strategy ablation (BENCH_strategy.json)
/// that EXPERIMENTS.md's strategy-portfolio table is generated from.
inline void writeStrategyJson(const std::string &Path,
                              const std::vector<StrategyRow> &Rows) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    return;
  }
  std::fprintf(F, "{\n  \"axis\": \"search_strategy\",\n  \"results\": [\n");
  for (size_t I = 0; I < Rows.size(); ++I) {
    const StrategyRow &R = Rows[I];
    std::fprintf(F,
                 "    {\"workload\": \"%s\", \"strategy\": \"%s\", "
                 "\"jobs\": %u, \"runs\": %u, \"runs_to_cover\": %u, "
                 "\"coverage\": %u, \"coverage_total\": %u, "
                 "\"bug_found\": %s, \"stopped_early\": %s, "
                 "\"wall_clock_ms\": %.3f, \"peak_rss_mib\": %.1f}%s\n",
                 R.Workload.c_str(), R.Strategy.c_str(), R.Jobs, R.Runs,
                 R.RunsToCover, R.Coverage, R.CoverageTotal,
                 R.BugFound ? "true" : "false",
                 R.StoppedEarly ? "true" : "false", R.MedianMs,
                 R.PeakRssMib > 0.0 ? R.PeakRssMib : peakRssMib(),
                 I + 1 < Rows.size() ? "," : "");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  std::printf("wrote %s\n", Path.c_str());
}

/// One row of the snapshot-resume ablation: the same directed session
/// with checkpoint resume on and off, at one worker count.
struct SnapshotRow {
  std::string Workload;
  unsigned Jobs = 1;
  unsigned Runs = 0;
  uint64_t ExecutedOn = 0;   ///< instructions executed, snapshots on
  uint64_t ExecutedOff = 0;  ///< instructions executed, snapshots off
  uint64_t Skipped = 0;      ///< prefix instructions resume avoided
  uint64_t RunsResumed = 0;
  uint64_t ResumeMisses = 0;
  uint64_t PeakResidentBytes = 0;
  double ElapsedOnSec = 0.0;
  double ElapsedOffSec = 0.0;
  double PeakRssMib = 0.0;
  bool Identical = false; ///< search observables match across the axis

  double reduction() const {
    return ExecutedOn ? double(ExecutedOff) / double(ExecutedOn) : 0.0;
  }
};

/// Emits the machine-readable snapshot ablation (BENCH_exec_snapshot.json)
/// that EXPERIMENTS.md's resumed-fraction table is generated from.
inline void writeSnapshotJson(const std::string &Path,
                              const std::vector<SnapshotRow> &Rows) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    return;
  }
  std::fprintf(F, "{\n  \"axis\": \"snapshot_resume\",\n  \"results\": [\n");
  for (size_t I = 0; I < Rows.size(); ++I) {
    const SnapshotRow &R = Rows[I];
    std::fprintf(F,
                 "    {\"workload\": \"%s\", \"jobs\": %u, \"runs\": %u, "
                 "\"executed_on\": %llu, \"executed_off\": %llu, "
                 "\"skipped\": %llu, \"runs_resumed\": %llu, "
                 "\"resume_misses\": %llu, \"reduction\": %.2f, "
                 "\"peak_resident_bytes\": %llu, "
                 "\"elapsed_on_sec\": %.6f, \"elapsed_off_sec\": %.6f, "
                 "\"elapsed_on_ms\": %.3f, \"elapsed_off_ms\": %.3f, "
                 "\"peak_rss_mib\": %.1f, \"identical_search\": %s}%s\n",
                 R.Workload.c_str(), R.Jobs, R.Runs,
                 static_cast<unsigned long long>(R.ExecutedOn),
                 static_cast<unsigned long long>(R.ExecutedOff),
                 static_cast<unsigned long long>(R.Skipped),
                 static_cast<unsigned long long>(R.RunsResumed),
                 static_cast<unsigned long long>(R.ResumeMisses),
                 R.reduction(),
                 static_cast<unsigned long long>(R.PeakResidentBytes),
                 R.ElapsedOnSec, R.ElapsedOffSec, R.ElapsedOnSec * 1e3,
                 R.ElapsedOffSec * 1e3,
                 R.PeakRssMib > 0.0 ? R.PeakRssMib : peakRssMib(),
                 R.Identical ? "true" : "false",
                 I + 1 < Rows.size() ? "," : "");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  std::printf("wrote %s\n", Path.c_str());
}

/// One row of the execution-tier ablation: the same session with the
/// baseline JIT on and off, at one worker count. The JIT is a pure
/// performance lever (jit_diff_test pins byte-identity), so the axis
/// metric is wall-clock alone.
struct JitRow {
  std::string Workload;
  std::string Mode = "directed"; ///< "directed" or "random"
  unsigned Jobs = 1;
  unsigned Runs = 0;
  uint64_t NativeInstrs = 0; ///< instructions retired in compiled code
  uint64_t Executed = 0;     ///< total instructions the session executed
  double ElapsedOnMs = 0.0;
  double ElapsedOffMs = 0.0;
  double PeakRssMib = 0.0;
  bool Identical = false; ///< search observables match across the axis

  double nativeShare() const {
    return Executed ? double(NativeInstrs) / double(Executed) : 0.0;
  }
  double speedup() const {
    return ElapsedOnMs > 0.0 ? ElapsedOffMs / ElapsedOnMs : 0.0;
  }
};

/// Emits the machine-readable execution-tier ablation (BENCH_jit.json)
/// that EXPERIMENTS.md's JIT table is generated from.
inline void writeJitJson(const std::string &Path,
                         const std::vector<JitRow> &Rows) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    return;
  }
  std::fprintf(F, "{\n  \"axis\": \"jit\",\n  \"results\": [\n");
  for (size_t I = 0; I < Rows.size(); ++I) {
    const JitRow &R = Rows[I];
    std::fprintf(F,
                 "    {\"workload\": \"%s\", \"mode\": \"%s\", \"jobs\": %u, "
                 "\"runs\": %u, \"native_instrs\": %llu, "
                 "\"executed_instrs\": %llu, \"native_share\": %.4f, "
                 "\"elapsed_on_ms\": %.3f, \"elapsed_off_ms\": %.3f, "
                 "\"speedup\": %.2f, \"peak_rss_mib\": %.1f, "
                 "\"identical_search\": %s}%s\n",
                 R.Workload.c_str(), R.Mode.c_str(), R.Jobs, R.Runs,
                 static_cast<unsigned long long>(R.NativeInstrs),
                 static_cast<unsigned long long>(R.Executed),
                 R.nativeShare(), R.ElapsedOnMs, R.ElapsedOffMs, R.speedup(),
                 R.PeakRssMib > 0.0 ? R.PeakRssMib : peakRssMib(),
                 R.Identical ? "true" : "false",
                 I + 1 < Rows.size() ? "," : "");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  std::printf("wrote %s\n", Path.c_str());
}

/// One row of the prove-or-test ablation: the same heuristic session
/// with the verifier's branch-direction proofs applied and withheld.
/// Proofs shrink the coverable universe, so the early exit (and with it
/// the completeness certificate) can fire on sessions that would
/// otherwise burn their whole run budget against infeasible directions.
struct VerifyRow {
  std::string Workload;
  bool VerifyOn = false;
  unsigned Runs = 0;
  uint64_t SolverCalls = 0;
  unsigned Coverage = 0;       ///< branch directions covered
  unsigned CoverableTotal = 0; ///< universe after proofs (== before, off)
  unsigned ProvedDirs = 0;     ///< directions proved infeasible
  bool Certified = false;      ///< branch coverage certified complete
  bool StoppedEarly = false;   ///< coverable-direction early exit fired
  double MedianMs = 0.0;       ///< median-of-5 interleaved wall-clock
  double ProveMs = 0.0;        ///< prover share of the session (on only)
  double PeakRssMib = 0.0;
};

/// Emits the machine-readable prove-or-test ablation (BENCH_verify.json)
/// that EXPERIMENTS.md's triage table is generated from.
inline void writeVerifyJson(const std::string &Path,
                            const std::vector<VerifyRow> &Rows) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    return;
  }
  std::fprintf(F, "{\n  \"axis\": \"verify\",\n  \"results\": [\n");
  for (size_t I = 0; I < Rows.size(); ++I) {
    const VerifyRow &R = Rows[I];
    std::fprintf(F,
                 "    {\"workload\": \"%s\", \"verify\": %s, \"runs\": %u, "
                 "\"solver_calls\": %llu, \"coverage\": %u, "
                 "\"coverable_total\": %u, \"proved_dirs\": %u, "
                 "\"certified\": %s, \"stopped_early\": %s, "
                 "\"wall_clock_ms\": %.3f, \"prove_ms\": %.3f, "
                 "\"peak_rss_mib\": %.1f}%s\n",
                 R.Workload.c_str(), R.VerifyOn ? "true" : "false", R.Runs,
                 static_cast<unsigned long long>(R.SolverCalls), R.Coverage,
                 R.CoverableTotal, R.ProvedDirs,
                 R.Certified ? "true" : "false",
                 R.StoppedEarly ? "true" : "false", R.MedianMs, R.ProveMs,
                 R.PeakRssMib > 0.0 ? R.PeakRssMib : peakRssMib(),
                 I + 1 < Rows.size() ? "," : "");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  std::printf("wrote %s\n", Path.c_str());
}

} // namespace dart::bench

#endif // DART_BENCH_BENCHUTIL_H
