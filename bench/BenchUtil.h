//===- BenchUtil.h - Shared helpers for experiment harnesses ----*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the bench/ binaries. Each binary regenerates one table
/// or figure of the paper's evaluation (§4): it prints the paper's rows
/// next to the reproduction's, then runs google-benchmark timings.
///
/// Set DART_BENCH_FULL=1 to include the long-running rows (the Dolev-Yao
/// depth-4 search takes minutes, as it did in the paper).
///
//===----------------------------------------------------------------------===//

#ifndef DART_BENCH_BENCHUTIL_H
#define DART_BENCH_BENCHUTIL_H

#include "core/Dart.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

namespace dart::bench {

inline bool fullMode() {
  const char *Env = std::getenv("DART_BENCH_FULL");
  return Env && Env[0] == '1';
}

inline std::unique_ptr<Dart> compileOrDie(const std::string &Source,
                                          const char *What) {
  std::string Errors;
  auto D = Dart::fromSource(Source, &Errors);
  if (!D) {
    std::fprintf(stderr, "failed to compile %s:\n%s\n", What,
                 Errors.c_str());
    std::exit(1);
  }
  return D;
}

/// One DART session with the common experiment knobs.
inline DartReport session(const Dart &D, const std::string &Toplevel,
                          unsigned Depth, unsigned MaxRuns,
                          uint64_t Seed = 2005, bool RandomOnly = false) {
  DartOptions Opts;
  Opts.ToplevelName = Toplevel;
  Opts.Depth = Depth;
  Opts.MaxRuns = MaxRuns;
  Opts.Seed = Seed;
  Opts.RandomOnly = RandomOnly;
  return D.run(Opts);
}

inline void printHeader(const char *Title) {
  std::printf("\n================================================================\n"
              "%s\n"
              "================================================================\n",
              Title);
}

} // namespace dart::bench

#endif // DART_BENCH_BENCHUTIL_H
