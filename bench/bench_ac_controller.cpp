//===- bench_ac_controller.cpp - Reproduces paper §4.1 ---------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Paper §4.1 (AC-controller, Fig. 6):
//   depth 1: no error; directed search explores all paths in 6 iterations,
//            < 1 second. Random search would run forever.
//   depth 2: assertion violation (messages 3 then 0) found by the directed
//            search in 7 iterations, < 1 second; random search finds
//            nothing in hours (chance 2^-64 per try).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "workloads/Workloads.h"

using namespace dart;
using namespace dart::bench;

namespace {

void printTable() {
  auto D = compileOrDie(workloads::acControllerSource(), "AC-controller");
  printHeader("Section 4.1 - AC-controller (paper Fig. 6 program)");
  std::printf("%-7s %-22s %-22s %s\n", "depth", "paper directed", "ours directed",
              "ours random (capped)");

  for (unsigned Depth = 1; Depth <= 2; ++Depth) {
    DartReport Directed = session(*D, "ac_controller", Depth, 100000);
    DartReport Random = session(*D, "ac_controller", Depth, 100000,
                                /*Seed=*/99, /*RandomOnly=*/true);
    const char *PaperRow = Depth == 1 ? "no error, 6 runs" : "error, 7 runs";
    char Ours[64], Rand[64];
    std::snprintf(Ours, sizeof(Ours), "%s, %u runs",
                  Directed.BugFound ? "error" : "no error", Directed.Runs);
    std::snprintf(Rand, sizeof(Rand), "%s after %u runs",
                  Random.BugFound ? "error" : "no error", Random.Runs);
    std::printf("%-7u %-22s %-22s %s\n", Depth, PaperRow, Ours, Rand);
    if (Depth == 1 && Directed.CompleteExploration)
      std::printf("        (depth 1 exploration complete: Theorem 1(b))\n");
    if (Depth == 2 && Directed.BugFound)
      std::printf("        failing inputs: %s\n",
                  Directed.Bugs[0].toString().c_str());
  }
}

void BM_AcControllerDirectedDepth2(benchmark::State &State) {
  auto D = compileOrDie(workloads::acControllerSource(), "AC-controller");
  for (auto _ : State) {
    DartReport R = session(*D, "ac_controller", 2, 1000);
    benchmark::DoNotOptimize(R.Runs);
    State.counters["runs_to_bug"] = R.Runs;
  }
}
BENCHMARK(BM_AcControllerDirectedDepth2);

void BM_AcControllerRandom1000Runs(benchmark::State &State) {
  auto D = compileOrDie(workloads::acControllerSource(), "AC-controller");
  for (auto _ : State) {
    DartReport R = session(*D, "ac_controller", 2, 1000, 3, true);
    benchmark::DoNotOptimize(R.Runs);
  }
}
BENCHMARK(BM_AcControllerRandom1000Runs);

} // namespace

int main(int argc, char **argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
