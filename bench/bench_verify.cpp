//===- bench_verify.cpp - Prove-or-test ablation (verify on/off) ----------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The prove-or-test verifier's performance claim: branch-direction
// infeasibility proofs shrink the coverable universe, so a heuristic
// session saturates (and early-exits with a completeness certificate)
// instead of spending its remaining run budget soliciting the solver for
// directions no execution can take. This harness runs the §4 workloads
// (plus the guard-heavy config-filters fixture, where most of the
// universe is provable) under --strategy distance with the verifier on
// and off, and reports runs, solver calls and median-of-5 wall-clock per
// cell. Emits BENCH_verify.json.
//
// dfs sessions are untouched by construction (tests/verify_test.cpp pins
// report identity), so the axis only measures heuristic strategies.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "analysis/StaticSummary.h"
#include "analysis/Verify.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <chrono>

using namespace dart;
using namespace dart::bench;

namespace {

// bench_coverage.cpp's config-filters workload: concrete configuration
// gates and a monovalent range check in front of input-driven branches —
// the best case for proofs, since most uncovered directions are
// infeasible and the session cannot saturate without them.
const char *ConfigFilters = R"(
  int version = 2;
  int debug = 0;
  int window = 16;
  int narrow(char tag) {
    if (tag < 300) {
      return tag + 1;
    }
    return 0;
  }
  int route(char tag, int len) {
    int acc;
    acc = 0;
    if (version != 2) { acc = -1; }
    if (debug == 1) { acc = acc - 1; }
    if (window >= 8) { acc = acc + 1; }
    if (tag < 300) { acc = acc + narrow(tag); }
    if (len == 42) { acc = acc + 2; }
    if (len > 100) {
      if (tag == 7) { acc = acc + 3; }
    }
    return acc;
  }
)";

void printVerifyAblation() {
  printHeader("Prove-or-test ablation - distance strategy, verify on/off");
  std::printf("%-20s %-7s %-7s %-8s %-9s %-7s %-6s %-7s %s\n", "workload",
              "verify", "runs", "solver", "coverage", "proved", "cert",
              "early", "median-ms");

  struct Case {
    const char *Name;
    std::string Source;
    const char *Toplevel;
    unsigned Depth;
    unsigned MaxRuns;
  };
  workloads::NsConfig Ns;
  std::vector<Case> Cases = {
      {"ac_controller", workloads::acControllerSource(), "ac_controller", 1,
       1000},
      {"ac_controller_d2", workloads::acControllerSource(), "ac_controller",
       2, 1000},
      {"needham_schroeder", workloads::needhamSchroederSource(Ns), "ns_step",
       1, 1000},
      {"config_filters", ConfigFilters, "route", 1, 1000},
      {"minisip_receive", workloads::miniSipSource(), "sip_receive", 1, 300},
  };

  std::vector<VerifyRow> Rows;
  for (const Case &C : Cases) {
    auto D = compileOrDie(C.Source, C.Name);
    struct Cell {
      bool VerifyOn;
      std::vector<double> SamplesMs;
      DartReport Report;
    };
    std::vector<Cell> Cells = {{true, {}, {}}, {false, {}, {}}};
    // Interleave repetitions so background-load drift is shared.
    for (int Rep = 0; Rep < 5; ++Rep) {
      for (Cell &Cell : Cells) {
        DartOptions Opts;
        Opts.ToplevelName = C.Toplevel;
        Opts.Depth = C.Depth;
        Opts.MaxRuns = C.MaxRuns;
        Opts.Seed = 2005;
        Opts.StopAtFirstError = false;
        Opts.Strategy = SearchStrategy::Distance;
        Opts.Verify = Cell.VerifyOn;
        auto Start = std::chrono::steady_clock::now();
        Cell.Report = D->run(Opts);
        Cell.SamplesMs.push_back(
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - Start)
                .count());
      }
    }
    // The prover's own share, measured standalone (it runs once per
    // session, before the first execution).
    double ProveMs = 0.0;
    {
      StaticSummary Sum = computeStaticSummary(D->module(), C.Toplevel);
      auto Start = std::chrono::steady_clock::now();
      BranchProofs P = proveBranchDirections(D->module(), C.Toplevel, Sum,
                                             C.Depth == 1);
      ProveMs = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
      benchmark::DoNotOptimize(P.ProvedCount);
    }
    for (Cell &Cell : Cells) {
      std::sort(Cell.SamplesMs.begin(), Cell.SamplesMs.end());
      const DartReport &R = Cell.Report;
      VerifyRow Row;
      Row.Workload = C.Name;
      Row.VerifyOn = Cell.VerifyOn;
      Row.Runs = R.Runs;
      Row.SolverCalls = R.SolverCalls;
      Row.Coverage = R.BranchDirectionsCovered;
      Row.CoverableTotal = R.CoverableDirsTotal;
      Row.ProvedDirs = R.DirsProvedInfeasible;
      Row.Certified = R.CoverageCertified;
      Row.StoppedEarly = R.StoppedEarly;
      Row.MedianMs = Cell.SamplesMs[Cell.SamplesMs.size() / 2];
      Row.ProveMs = Cell.VerifyOn ? ProveMs : 0.0;
      Row.PeakRssMib = peakRssMib();
      Rows.push_back(Row);
      std::printf("%-20s %-7s %-7u %-8llu %-9u %-7u %-6s %-7s %.1f\n",
                  Row.Workload.c_str(), Row.VerifyOn ? "on" : "off",
                  Row.Runs,
                  static_cast<unsigned long long>(Row.SolverCalls),
                  Row.Coverage, Row.ProvedDirs,
                  Row.Certified ? "yes" : "no",
                  Row.StoppedEarly ? "yes" : "no", Row.MedianMs);
    }
    const VerifyRow &On = Rows[Rows.size() - 2];
    const VerifyRow &Off = Rows[Rows.size() - 1];
    if (On.Runs < Off.Runs || On.SolverCalls < Off.SolverCalls)
      std::printf("  proofs saved %u runs / %llu solver calls\n",
                  Off.Runs - On.Runs,
                  static_cast<unsigned long long>(Off.SolverCalls -
                                                  On.SolverCalls));
  }
  writeVerifyJson("BENCH_verify.json", Rows);
}

// Prover wall-clock on the largest module (~90 functions): what `dart
// verify`/--verify on pays before the first run.
void BM_ProveBranchDirections(benchmark::State &State) {
  auto D = compileOrDie(workloads::miniSipSource(), "miniSIP");
  StaticSummary Sum = computeStaticSummary(D->module(), "sip_receive");
  for (auto _ : State) {
    BranchProofs P =
        proveBranchDirections(D->module(), "sip_receive", Sum, true);
    benchmark::DoNotOptimize(P.ProvedCount);
  }
}
BENCHMARK(BM_ProveBranchDirections);

// Full triage including abort/lint sites — the `dart analyze --triage`
// static leg.
void BM_RunVerifier(benchmark::State &State) {
  auto D = compileOrDie(workloads::miniSipSource(), "miniSIP");
  StaticSummary Sum = computeStaticSummary(D->module(), "sip_receive");
  BranchProofs P =
      proveBranchDirections(D->module(), "sip_receive", Sum, true);
  for (auto _ : State) {
    VerifyResult R = runVerifier(D->module(), "sip_receive", Sum, P, true);
    benchmark::DoNotOptimize(R.Sites.size());
  }
}
BENCHMARK(BM_RunVerifier);

} // namespace

int main(int argc, char **argv) {
  printVerifyAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
