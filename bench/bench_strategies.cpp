//===- bench_strategies.cpp - Search-strategy ablations (footnote 4) -------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Paper footnote 4: "A depth-first search is used for exposition, but the
// next branch to be forced could be selected using a different strategy,
// e.g., randomly or in a breadth-first manner." This harness compares the
// branch-selection strategies (including the distance, diversity and
// portfolio engines; BENCH_strategy.json) and the two other design levers
// DESIGN.md calls out: marking concrete branches done, and the CUTE-style
// symbolic-pointer extension.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "jit/Jit.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <chrono>

using namespace dart;
using namespace dart::bench;

namespace {

// A filter chain: DFS digs straight down; BFS keeps re-flipping shallow
// branches and loses the deep prefix work.
const char *DeepFilter = R"(
  void process(int a, int b, int c, int d) {
    if (a == 11)
      if (b == a + 22)
        if (c == b - 5)
          if (d == c * 3)
            abort();
  }
)";

void printStrategyTable() {
  printHeader("Strategy ablation - branch selection (paper footnote 4)");
  std::printf("%-10s %-22s %-10s %s\n", "strategy", "bug found", "runs",
              "branch directions covered");
  auto D = compileOrDie(DeepFilter, "deep filter");
  for (SearchStrategy S :
       {SearchStrategy::DepthFirst, SearchStrategy::BreadthFirst,
        SearchStrategy::RandomBranch}) {
    DartOptions Opts;
    Opts.ToplevelName = "process";
    Opts.Strategy = S;
    Opts.MaxRuns = 2000;
    Opts.Seed = 2005;
    DartReport R = D->run(Opts);
    std::printf("%-10s %-22s %-10u %u/%u\n", searchStrategyName(S),
                R.BugFound ? "yes" : "no", R.Runs,
                R.BranchDirectionsCovered, 2 * R.BranchSitesTotal);
  }
  std::printf("(only depth-first may claim Theorem 1(b) completeness;\n"
              " see DartEngine.cpp)\n");
}

// A copy of bench_coverage.cpp's config-filters workload: concrete
// configuration guards in front of input-dependent branches.
const char *ConfigFilters = R"(
  int version = 2;
  int debug = 0;
  int window = 16;
  int narrow(char tag) {
    if (tag < 300) {
      return tag + 1;
    }
    return 0;
  }
  int route(char tag, int len) {
    int acc;
    acc = 0;
    if (version != 2) { acc = -1; }
    if (debug == 1) { acc = acc - 1; }
    if (window >= 8) { acc = acc + 1; }
    if (tag < 300) { acc = acc + narrow(tag); }
    if (len == 42) { acc = acc + 2; }
    if (len > 100) {
      if (tag == 7) { acc = acc + 3; }
    }
    return acc;
  }
)";

/// Strategy-portfolio ablation: the §4 workloads under dfs, distance,
/// diversity and the portfolio, at 1 and 4 workers. Each cell reports
/// the median of five interleaved wall-clock repetitions (drift hits
/// every cell equally), the runs to reach the cell's terminal coverage,
/// and whether the coverable-direction early exit fired. Emits
/// BENCH_strategy.json.
void printStrategyPortfolioTable() {
  printHeader("Strategy portfolio - wall-clock and runs-to-cover");
  std::printf("%-20s %-10s %-5s %-7s %-9s %-9s %-5s %-7s %s\n", "workload",
              "strategy", "jobs", "runs", "to-cover", "coverage", "bug",
              "early", "median-ms");

  struct Case {
    const char *Name;
    std::string Source;
    const char *Toplevel;
    unsigned Depth;
    unsigned MaxRuns;
  };
  workloads::NsConfig Ns;
  Ns.DolevYao = false;
  Ns.Fix = workloads::LoweFix::None;
  std::vector<Case> Cases = {
      {"ac_controller", workloads::acControllerSource(), "ac_controller", 2,
       2000},
      {"needham_schroeder", workloads::needhamSchroederSource(Ns), "ns_step",
       2, 1500},
      {"config_filters", ConfigFilters, "route", 1, 500},
      {"minisip_auth", workloads::miniSipSource(), "sip_auth_check", 1, 500},
      {"minisip_receive", workloads::miniSipSource(), "sip_receive", 1, 300},
  };
  const std::vector<SearchStrategy> Strategies = {
      SearchStrategy::DepthFirst, SearchStrategy::Distance,
      SearchStrategy::Diversity, SearchStrategy::Portfolio};

  std::vector<StrategyRow> Rows;
  for (const Case &C : Cases) {
    auto D = compileOrDie(C.Source, C.Name);
    struct Cell {
      SearchStrategy Strategy;
      unsigned Jobs;
      std::vector<double> SamplesMs;
      DartReport Report;
    };
    std::vector<Cell> Cells;
    for (SearchStrategy S : Strategies)
      for (unsigned Jobs : {1u, 4u})
        Cells.push_back({S, Jobs, {}, {}});
    // Interleave: one repetition visits every cell once before any cell
    // is timed again, so background-load drift is shared.
    for (int Rep = 0; Rep < 5; ++Rep) {
      for (Cell &Cell : Cells) {
        DartOptions Opts;
        Opts.ToplevelName = C.Toplevel;
        Opts.Depth = C.Depth;
        Opts.MaxRuns = C.MaxRuns;
        Opts.Seed = 2005;
        Opts.StopAtFirstError = false;
        Opts.Jobs = Cell.Jobs;
        Opts.Strategy = Cell.Strategy;
        Opts.TrackCoverageTimeline = true;
        auto Start = std::chrono::steady_clock::now();
        Cell.Report = D->run(Opts);
        Cell.SamplesMs.push_back(
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - Start)
                .count());
      }
    }
    for (Cell &Cell : Cells) {
      std::sort(Cell.SamplesMs.begin(), Cell.SamplesMs.end());
      const DartReport &R = Cell.Report;
      StrategyRow Row;
      Row.Workload = C.Name;
      Row.Strategy = searchStrategyName(Cell.Strategy);
      Row.Jobs = Cell.Jobs;
      Row.Runs = R.Runs;
      Row.Coverage = R.BranchDirectionsCovered;
      Row.CoverageTotal = 2 * R.BranchSitesTotal;
      Row.BugFound = R.BugFound;
      Row.StoppedEarly = R.StoppedEarly;
      Row.MedianMs = Cell.SamplesMs[Cell.SamplesMs.size() / 2];
      Row.RunsToCover = R.Runs;
      for (unsigned I = 0; I < R.CoverageTimeline.size(); ++I)
        if (R.CoverageTimeline[I] >= R.BranchDirectionsCovered) {
          Row.RunsToCover = I + 1;
          break;
        }
      Row.PeakRssMib = peakRssMib();
      Rows.push_back(Row);
      char CovCell[32];
      std::snprintf(CovCell, sizeof(CovCell), "%u/%u", Row.Coverage,
                    Row.CoverageTotal);
      std::printf("%-20s %-10s %-5u %-7u %-9u %-9s %-5s %-7s %.1f\n",
                  Row.Workload.c_str(), Row.Strategy.c_str(), Row.Jobs,
                  Row.Runs, Row.RunsToCover, CovCell,
                  Row.BugFound ? "yes" : "no",
                  Row.StoppedEarly ? "yes" : "no", Row.MedianMs);
    }
    // The headline claim: the 4-worker portfolio is within noise of the
    // best single strategy at 4 workers on this workload.
    double BestSingle = 1e30, Portfolio = 0.0;
    for (const StrategyRow &Row : Rows) {
      if (Row.Workload != C.Name || Row.Jobs != 4)
        continue;
      if (Row.Strategy == "portfolio")
        Portfolio = Row.MedianMs;
      else
        BestSingle = std::min(BestSingle, Row.MedianMs);
    }
    std::printf("  portfolio@4 %.1fms vs best single@4 %.1fms (%.2fx)\n",
                Portfolio, BestSingle,
                BestSingle > 0.0 ? Portfolio / BestSingle : 0.0);
  }
  writeStrategyJson("BENCH_strategy.json", Rows);
}

void printConcreteBranchTable() {
  printHeader("Ablation - concrete branches born `done` (DESIGN.md)");
  const char *Source = R"(
    int mode = 1;
    int f(int x) {
      if (mode == 1) { }
      if (mode != 2) { }
      if (mode + 1 == 2) { }
      if (x == 3) return 1;
      return 0;
    }
  )";
  auto D = compileOrDie(Source, "concrete-branch program");
  for (bool Mark : {false, true}) {
    DartOptions Opts;
    Opts.ToplevelName = "f";
    Opts.Concolic.MarkConcreteBranchesDone = Mark;
    Opts.MaxRuns = 100;
    DartReport R = D->run(Opts);
    std::printf("%-28s runs=%u solver calls=%llu complete=%s\n",
                Mark ? "optimized (born done):" : "literal Fig. 5:",
                R.Runs, static_cast<unsigned long long>(R.SolverCalls),
                R.CompleteExploration ? "yes" : "no");
  }
}

void printSymbolicPointerTable() {
  printHeader("Ablation - symbolic pointer choices (CUTE-style extension)");
  const char *Source = R"(
    struct box { int v; };
    void f(struct box *p) {
      if (p != NULL)
        if (p->v == 4242)
          abort();
    }
  )";
  auto D = compileOrDie(Source, "pointer program");
  for (bool Sym : {false, true}) {
    unsigned TotalRuns = 0, Found = 0;
    const unsigned Trials = 20;
    for (uint64_t Seed = 1; Seed <= Trials; ++Seed) {
      DartOptions Opts;
      Opts.ToplevelName = "f";
      Opts.Concolic.SymbolicPointers = Sym;
      Opts.MaxRuns = 200;
      Opts.Seed = Seed;
      DartReport R = D->run(Opts);
      TotalRuns += R.Runs;
      Found += R.BugFound ? 1 : 0;
    }
    std::printf("%-28s found %u/%u, avg runs %.1f\n",
                Sym ? "symbolic pointers (CUTE):" : "paper (restarts):",
                Found, Trials, double(TotalRuns) / Trials);
  }
}

/// Execution-tier ablation: the same session with the baseline JIT on and
/// off. The random-testing rows are the interpreter-bound ones — no solver
/// in the loop, so wall-clock is dominated by instruction dispatch, which
/// is exactly what the native tier replaces. Each side is timed three
/// times and the fastest repetition is kept. Emits BENCH_jit.json.
void printJitAblation() {
  printHeader("Execution-tier ablation - wall-clock with JIT on/off");
  if (!jit::jitSupported())
    std::printf("(native execution unavailable in this build: both sides "
                "run the interpreter)\n");
  std::printf("%-22s %-9s %-5s %-7s %-13s %-13s %-9s %-8s %s\n", "workload",
              "mode", "jobs", "runs", "on(ms)", "off(ms)", "speedup",
              "native", "identical search");

  struct Case {
    const char *Name;
    std::string Source;
    const char *Toplevel;
    unsigned Depth;
    unsigned MaxRuns;
    bool RandomOnly;
    unsigned Jobs;
  };
  std::vector<Case> Cases = {
      // §4.1 random-testing baseline: depth-64 message sequences, pure
      // interpretation — the headline speedup row.
      {"ac_controller", workloads::acControllerSource(), "ac_controller",
       64, 2000, true, 1},
      {"ac_controller", workloads::acControllerSource(), "ac_controller",
       64, 2000, true, 4},
      // Directed sessions: the solver and bookkeeping share the clock, so
      // the native tier buys less end-to-end.
      {"ac_controller", workloads::acControllerSource(), "ac_controller", 4,
       2000, false, 1},
      {"minisip_receive", workloads::miniSipSource(), "sip_receive", 1, 300,
       false, 1},
  };

  std::vector<JitRow> Rows;
  for (const Case &C : Cases) {
    auto D = compileOrDie(C.Source, C.Name);
    auto TimeOne = [&](bool Jit, DartReport &R) {
      DartOptions Opts;
      Opts.ToplevelName = C.Toplevel;
      Opts.Depth = C.Depth;
      Opts.MaxRuns = C.MaxRuns;
      Opts.Seed = 2005;
      Opts.StopAtFirstError = false;
      Opts.RandomOnly = C.RandomOnly;
      Opts.Jobs = C.Jobs;
      Opts.Jit = Jit;
      auto Start = std::chrono::steady_clock::now();
      R = D->run(Opts);
      return std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - Start)
          .count();
    };
    JitRow Row;
    Row.Workload = C.Name;
    Row.Mode = C.RandomOnly ? "random" : "directed";
    Row.Jobs = C.Jobs;
    // The two sides alternate within each repetition so background-load
    // drift hits both equally; the fastest repetition per side is kept.
    DartReport On, Off;
    Row.ElapsedOnMs = Row.ElapsedOffMs = 1e30;
    for (int Rep = 0; Rep < 5; ++Rep) {
      Row.ElapsedOnMs = std::min(Row.ElapsedOnMs, TimeOne(true, On));
      Row.ElapsedOffMs = std::min(Row.ElapsedOffMs, TimeOne(false, Off));
    }
    Row.Runs = On.Runs;
    Row.NativeInstrs = On.Jit.NativeInstrs;
    Row.Executed = On.Snapshot.InstructionsExecuted;
    Row.Identical = On.Runs == Off.Runs && On.BugFound == Off.BugFound &&
                    On.BranchDirectionsCovered ==
                        Off.BranchDirectionsCovered &&
                    On.Coverage == Off.Coverage &&
                    On.TotalSteps == Off.TotalSteps;
    Rows.push_back(Row);
    char Speedup[32], Native[32];
    std::snprintf(Speedup, sizeof(Speedup), "%.2fx", Row.speedup());
    std::snprintf(Native, sizeof(Native), "%.0f%%",
                  100.0 * Row.nativeShare());
    std::printf("%-22s %-9s %-5u %-7u %-13.1f %-13.1f %-9s %-8s %s\n",
                Row.Workload.c_str(), Row.Mode.c_str(), Row.Jobs, Row.Runs,
                Row.ElapsedOnMs, Row.ElapsedOffMs, Speedup, Native,
                Row.Identical ? "yes" : "NO (bug!)");
  }
  writeJitJson("BENCH_jit.json", Rows);
}

void BM_StrategyDfsDeepFilter(benchmark::State &State) {
  auto D = compileOrDie(DeepFilter, "deep filter");
  for (auto _ : State) {
    DartOptions Opts;
    Opts.ToplevelName = "process";
    Opts.MaxRuns = 2000;
    DartReport R = D->run(Opts);
    State.counters["runs_to_bug"] = R.Runs;
  }
}
BENCHMARK(BM_StrategyDfsDeepFilter);

void BM_StrategyRandomDeepFilter(benchmark::State &State) {
  auto D = compileOrDie(DeepFilter, "deep filter");
  for (auto _ : State) {
    DartOptions Opts;
    Opts.ToplevelName = "process";
    Opts.Strategy = SearchStrategy::RandomBranch;
    Opts.MaxRuns = 2000;
    DartReport R = D->run(Opts);
    State.counters["runs"] = R.Runs;
  }
}
BENCHMARK(BM_StrategyRandomDeepFilter);

// Worker-count axis: the same depth-2 Needham-Schroeder session under the
// frontier engine at 1/2/4 workers. The explored tree is identical at
// every W (determinism tests assert this); time per iteration shows how
// the machine scales it.
void BM_ParallelJobsNeedhamSchroeder(benchmark::State &State) {
  workloads::NsConfig C;
  auto D = compileOrDie(workloads::needhamSchroederSource(C),
                        "Needham-Schroeder");
  unsigned Jobs = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    DartOptions Opts;
    Opts.ToplevelName = "ns_step";
    Opts.Depth = 2;
    Opts.MaxRuns = 1000;
    Opts.Seed = 2005;
    Opts.StopAtFirstError = false;
    Opts.Jobs = Jobs;
    DartReport R = D->run(Opts);
    State.counters["runs"] = R.Runs;
    State.counters["cache_hit_rate"] = cacheHitRate(R.Solver);
  }
}
BENCHMARK(BM_ParallelJobsNeedhamSchroeder)->Arg(1)->Arg(2)->Arg(4);

} // namespace

int main(int argc, char **argv) {
  printStrategyTable();
  printStrategyPortfolioTable();
  printConcreteBranchTable();
  printSymbolicPointerTable();
  printJitAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
