//===- bench_strategies.cpp - Search-strategy ablations (footnote 4) -------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Paper footnote 4: "A depth-first search is used for exposition, but the
// next branch to be forced could be selected using a different strategy,
// e.g., randomly or in a breadth-first manner." This harness compares the
// three strategies and the two other design levers DESIGN.md calls out:
// marking concrete branches done, and the CUTE-style symbolic-pointer
// extension.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "workloads/Workloads.h"

using namespace dart;
using namespace dart::bench;

namespace {

// A filter chain: DFS digs straight down; BFS keeps re-flipping shallow
// branches and loses the deep prefix work.
const char *DeepFilter = R"(
  void process(int a, int b, int c, int d) {
    if (a == 11)
      if (b == a + 22)
        if (c == b - 5)
          if (d == c * 3)
            abort();
  }
)";

void printStrategyTable() {
  printHeader("Strategy ablation - branch selection (paper footnote 4)");
  std::printf("%-10s %-22s %-10s %s\n", "strategy", "bug found", "runs",
              "branch directions covered");
  auto D = compileOrDie(DeepFilter, "deep filter");
  for (SearchStrategy S :
       {SearchStrategy::DepthFirst, SearchStrategy::BreadthFirst,
        SearchStrategy::RandomBranch}) {
    DartOptions Opts;
    Opts.ToplevelName = "process";
    Opts.Strategy = S;
    Opts.MaxRuns = 2000;
    Opts.Seed = 2005;
    DartReport R = D->run(Opts);
    std::printf("%-10s %-22s %-10u %u/%u\n", searchStrategyName(S),
                R.BugFound ? "yes" : "no", R.Runs,
                R.BranchDirectionsCovered, 2 * R.BranchSitesTotal);
  }
  std::printf("(only depth-first may claim Theorem 1(b) completeness;\n"
              " see DartEngine.cpp)\n");
}

void printConcreteBranchTable() {
  printHeader("Ablation - concrete branches born `done` (DESIGN.md)");
  const char *Source = R"(
    int mode = 1;
    int f(int x) {
      if (mode == 1) { }
      if (mode != 2) { }
      if (mode + 1 == 2) { }
      if (x == 3) return 1;
      return 0;
    }
  )";
  auto D = compileOrDie(Source, "concrete-branch program");
  for (bool Mark : {false, true}) {
    DartOptions Opts;
    Opts.ToplevelName = "f";
    Opts.Concolic.MarkConcreteBranchesDone = Mark;
    Opts.MaxRuns = 100;
    DartReport R = D->run(Opts);
    std::printf("%-28s runs=%u solver calls=%llu complete=%s\n",
                Mark ? "optimized (born done):" : "literal Fig. 5:",
                R.Runs, static_cast<unsigned long long>(R.SolverCalls),
                R.CompleteExploration ? "yes" : "no");
  }
}

void printSymbolicPointerTable() {
  printHeader("Ablation - symbolic pointer choices (CUTE-style extension)");
  const char *Source = R"(
    struct box { int v; };
    void f(struct box *p) {
      if (p != NULL)
        if (p->v == 4242)
          abort();
    }
  )";
  auto D = compileOrDie(Source, "pointer program");
  for (bool Sym : {false, true}) {
    unsigned TotalRuns = 0, Found = 0;
    const unsigned Trials = 20;
    for (uint64_t Seed = 1; Seed <= Trials; ++Seed) {
      DartOptions Opts;
      Opts.ToplevelName = "f";
      Opts.Concolic.SymbolicPointers = Sym;
      Opts.MaxRuns = 200;
      Opts.Seed = Seed;
      DartReport R = D->run(Opts);
      TotalRuns += R.Runs;
      Found += R.BugFound ? 1 : 0;
    }
    std::printf("%-28s found %u/%u, avg runs %.1f\n",
                Sym ? "symbolic pointers (CUTE):" : "paper (restarts):",
                Found, Trials, double(TotalRuns) / Trials);
  }
}

void BM_StrategyDfsDeepFilter(benchmark::State &State) {
  auto D = compileOrDie(DeepFilter, "deep filter");
  for (auto _ : State) {
    DartOptions Opts;
    Opts.ToplevelName = "process";
    Opts.MaxRuns = 2000;
    DartReport R = D->run(Opts);
    State.counters["runs_to_bug"] = R.Runs;
  }
}
BENCHMARK(BM_StrategyDfsDeepFilter);

void BM_StrategyRandomDeepFilter(benchmark::State &State) {
  auto D = compileOrDie(DeepFilter, "deep filter");
  for (auto _ : State) {
    DartOptions Opts;
    Opts.ToplevelName = "process";
    Opts.Strategy = SearchStrategy::RandomBranch;
    Opts.MaxRuns = 2000;
    DartReport R = D->run(Opts);
    State.counters["runs"] = R.Runs;
  }
}
BENCHMARK(BM_StrategyRandomDeepFilter);

// Worker-count axis: the same depth-2 Needham-Schroeder session under the
// frontier engine at 1/2/4 workers. The explored tree is identical at
// every W (determinism tests assert this); time per iteration shows how
// the machine scales it.
void BM_ParallelJobsNeedhamSchroeder(benchmark::State &State) {
  workloads::NsConfig C;
  auto D = compileOrDie(workloads::needhamSchroederSource(C),
                        "Needham-Schroeder");
  unsigned Jobs = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    DartOptions Opts;
    Opts.ToplevelName = "ns_step";
    Opts.Depth = 2;
    Opts.MaxRuns = 1000;
    Opts.Seed = 2005;
    Opts.StopAtFirstError = false;
    Opts.Jobs = Jobs;
    DartReport R = D->run(Opts);
    State.counters["runs"] = R.Runs;
    State.counters["cache_hit_rate"] = cacheHitRate(R.Solver);
  }
}
BENCHMARK(BM_ParallelJobsNeedhamSchroeder)->Arg(1)->Arg(2)->Arg(4);

} // namespace

int main(int argc, char **argv) {
  printStrategyTable();
  printConcreteBranchTable();
  printSymbolicPointerTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
