//===- bench_coverage.cpp - §4.1's coverage claim as a series --------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Paper §1/§4.1: "it is well-known that random testing usually provides
// low code coverage" while a directed search "will eventually discover
// every path through the input-filtering code and start exercising the
// core application code". This harness plots cumulative branch-direction
// coverage against the number of runs, directed vs. random, on the
// AC-controller and on a miniSIP function with an input filter.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "workloads/Workloads.h"

using namespace dart;
using namespace dart::bench;

namespace {

void printSeries(const Dart &D, const char *Title, const char *Toplevel,
                 unsigned Depth, unsigned MaxRuns) {
  printHeader(Title);
  std::printf("%-8s %-22s %s\n", "runs", "directed coverage",
              "random coverage");

  auto Timeline = [&](bool RandomOnly) {
    DartOptions Opts;
    Opts.ToplevelName = Toplevel;
    Opts.Depth = Depth;
    Opts.MaxRuns = MaxRuns;
    Opts.Seed = 2005;
    Opts.RandomOnly = RandomOnly;
    Opts.StopAtFirstError = false; // keep covering past errors
    Opts.TrackCoverageTimeline = true;
    return D.run(Opts);
  };
  DartReport Directed = Timeline(false);
  DartReport Random = Timeline(true);
  unsigned Total = 2 * Directed.BranchSitesTotal;

  for (unsigned Runs : {1u, 2u, 5u, 10u, 20u, 50u, 100u, MaxRuns}) {
    auto At = [&](const DartReport &R) {
      if (R.CoverageTimeline.empty())
        return 0u;
      size_t Index = std::min<size_t>(Runs, R.CoverageTimeline.size()) - 1;
      return R.CoverageTimeline[Index];
    };
    char DirCell[32], RndCell[32];
    std::snprintf(DirCell, sizeof(DirCell), "%u/%u", At(Directed), Total);
    std::snprintf(RndCell, sizeof(RndCell), "%u/%u", At(Random), Total);
    std::printf("%-8u %-22s %s\n", Runs, DirCell, RndCell);
    if (Runs >= MaxRuns)
      break;
  }
}

void BM_CoverageTimelineDirected(benchmark::State &State) {
  auto D = compileOrDie(workloads::acControllerSource(), "AC-controller");
  for (auto _ : State) {
    DartOptions Opts;
    Opts.ToplevelName = "ac_controller";
    Opts.Depth = 2;
    Opts.MaxRuns = 100;
    Opts.StopAtFirstError = false;
    Opts.TrackCoverageTimeline = true;
    DartReport R = D->run(Opts);
    State.counters["covered"] =
        R.CoverageTimeline.empty() ? 0 : R.CoverageTimeline.back();
  }
}
BENCHMARK(BM_CoverageTimelineDirected);

} // namespace

int main(int argc, char **argv) {
  {
    auto D = compileOrDie(workloads::acControllerSource(), "AC-controller");
    printSeries(*D, "Coverage vs. runs - AC-controller, depth 2 (4.1)",
                "ac_controller", 2, 500);
  }
  {
    auto D = compileOrDie(workloads::miniSipSource(), "miniSIP");
    printSeries(*D,
                "Coverage vs. runs - miniSIP sip_auth_check (input filter)",
                "sip_auth_check", 1, 500);
  }
  std::printf("\npaper: directed search penetrates input filters and keeps "
              "gaining coverage;\nrandom testing plateaus at the filter "
              "(reaches the equality tests with\nprobability 2^-32 per "
              "run).\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
