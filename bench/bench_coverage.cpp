//===- bench_coverage.cpp - §4.1's coverage claim as a series --------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Paper §1/§4.1: "it is well-known that random testing usually provides
// low code coverage" while a directed search "will eventually discover
// every path through the input-filtering code and start exercising the
// core application code". This harness plots cumulative branch-direction
// coverage against the number of runs, directed vs. random, on the
// AC-controller and on a miniSIP function with an input filter.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <chrono>

using namespace dart;
using namespace dart::bench;

namespace {

void printSeries(const Dart &D, const char *Title, const char *Toplevel,
                 unsigned Depth, unsigned MaxRuns) {
  printHeader(Title);
  std::printf("%-8s %-22s %s\n", "runs", "directed coverage",
              "random coverage");

  auto Timeline = [&](bool RandomOnly) {
    DartOptions Opts;
    Opts.ToplevelName = Toplevel;
    Opts.Depth = Depth;
    Opts.MaxRuns = MaxRuns;
    Opts.Seed = 2005;
    Opts.RandomOnly = RandomOnly;
    Opts.StopAtFirstError = false; // keep covering past errors
    Opts.TrackCoverageTimeline = true;
    return D.run(Opts);
  };
  DartReport Directed = Timeline(false);
  DartReport Random = Timeline(true);
  unsigned Total = 2 * Directed.BranchSitesTotal;

  for (unsigned Runs : {1u, 2u, 5u, 10u, 20u, 50u, 100u, MaxRuns}) {
    auto At = [&](const DartReport &R) {
      if (R.CoverageTimeline.empty())
        return 0u;
      size_t Index = std::min<size_t>(Runs, R.CoverageTimeline.size()) - 1;
      return R.CoverageTimeline[Index];
    };
    char DirCell[32], RndCell[32];
    std::snprintf(DirCell, sizeof(DirCell), "%u/%u", At(Directed), Total);
    std::snprintf(RndCell, sizeof(RndCell), "%u/%u", At(Random), Total);
    std::printf("%-8u %-22s %s\n", Runs, DirCell, RndCell);
    if (Runs >= MaxRuns)
      break;
  }
}

// A branch lattice over cross-variable linear conditions behind a
// nonlinear guard. The guard clears `all_linear` on every run, so the
// engine can never claim completeness: it exhausts one directed tree,
// restarts from fresh random inputs, and explores the next — the 1500-run
// budget binds at every worker count and each row does exactly the same
// number of runs. The restart trees re-prove the same near-root UNSAT
// negations (the nested infeasible guards), which is what the shared
// solver query cache memoizes.
const char *BranchLattice = R"(
  int lattice(int a, int b, int c, int d) {
    int z = 0;
    if (a * a == -1) return 0;
    if (a + b > 0) z = z + 1;
    if (b + c > 10) z = z + 1;
    if (c + d > -5) z = z + 1;
    if (a + d > 7) z = z + 1;
    if (a - b > 3) z = z + 1;
    if (b + 2 * c > -1) z = z + 1;
    if (a > 5) { if (a < 3) z = z + 9; }
    if (d > 9) { if (d < -1) z = z + 9; }
    return z;
  }
)";

/// Parallel scaling: the same directed session at W workers. The run
/// budget binds on this workload, so every row does the same number of
/// runs and runs/sec is a fair throughput measure. Emits
/// BENCH_parallel.json.
void printParallelScaling() {
  printHeader("Parallel frontier search - runs/sec vs. workers");
  std::printf("%-9s %-9s %-12s %-12s %s\n", "workers", "runs",
              "elapsed(s)", "runs/sec", "solver cache hit rate");
  auto D = compileOrDie(BranchLattice, "branch lattice");
  std::vector<ParallelBenchRow> Rows;
  for (unsigned W : {1u, 2u, 4u}) {
    DartOptions Opts;
    Opts.ToplevelName = "lattice";
    Opts.MaxRuns = 1500; // binds below the ~1.7k-run full exploration
    Opts.Seed = 2005;
    Opts.StopAtFirstError = false;
    Opts.Jobs = W;
    auto Start = std::chrono::steady_clock::now();
    DartReport R = D->run(Opts);
    double Elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      Start)
            .count();
    ParallelBenchRow Row;
    Row.Workers = W;
    Row.Runs = R.Runs;
    Row.ElapsedSec = Elapsed;
    Row.RunsPerSec = Elapsed > 0 ? R.Runs / Elapsed : 0.0;
    Row.CacheHitRate = cacheHitRate(R.Solver);
    Rows.push_back(Row);
    std::printf("%-9u %-9u %-12.3f %-12.1f %.2f%%\n", Row.Workers, Row.Runs,
                Row.ElapsedSec, Row.RunsPerSec, 100.0 * Row.CacheHitRate);
  }
  writeParallelBenchJson("BENCH_parallel.json", "branch_lattice_restarts",
                         Rows);
  std::printf("(speedup needs real cores: on a single-CPU machine the "
              "workers time-slice\n and runs/sec stays flat; see "
              "EXPERIMENTS.md)\n");
}

// Same guard structure as examples/minic/filters.c: version/debug/window
// gates on initialized globals and a range check on a narrow input —
// exactly the sites the dataflow pre-pass proves one-sided.
const char *ConfigFilters = R"(
  int version = 2;
  int debug = 0;
  int window = 16;
  int narrow(char tag) {
    if (tag < 300) {
      return tag + 1;
    }
    return 0;
  }
  int route(char tag, int len) {
    int acc;
    acc = 0;
    if (version != 2) { acc = -1; }
    if (debug == 1) { acc = acc - 1; }
    if (window >= 8) { acc = acc + 1; }
    if (tag < 300) { acc = acc + narrow(tag); }
    if (len == 42) { acc = acc + 2; }
    if (len > 100) {
      if (tag == 7) { acc = acc + 3; }
    }
    return acc;
  }
)";

/// Static-prune ablation: the same directed session with the dataflow
/// pre-pass on and off. The search itself is identical either way (the
/// harness checks runs, bugs and coverage match); only solver traffic
/// changes. Emits BENCH_static_prune.json.
void printStaticPruneAblation() {
  printHeader("Static-prune ablation - solver calls with/without pre-pass");
  std::printf("%-22s %-12s %-12s %-9s %-10s %s\n", "workload", "calls(on)",
              "calls(off)", "saved", "runs", "identical search");

  struct Case {
    const char *Name;
    std::string Source;
    const char *Toplevel;
    unsigned Depth;
    unsigned MaxRuns;
  };
  std::vector<Case> Cases = {
      {"config_filters", ConfigFilters, "route", 1, 500},
      {"ac_controller", workloads::acControllerSource(), "ac_controller", 2,
       2000},
      {"minisip_get_host", workloads::miniSipSource(), "sip_uri_get_host", 1,
       300},
      {"minisip_receive", workloads::miniSipSource(), "sip_receive", 1, 300},
  };

  std::vector<StaticPruneRow> Rows;
  for (const Case &C : Cases) {
    auto D = compileOrDie(C.Source, C.Name);
    auto Run = [&](bool Prune, double &ElapsedSec) {
      DartOptions Opts;
      Opts.ToplevelName = C.Toplevel;
      Opts.Depth = C.Depth;
      Opts.MaxRuns = C.MaxRuns;
      Opts.Seed = 2005;
      Opts.StopAtFirstError = false;
      Opts.StaticPrune = Prune;
      auto Start = std::chrono::steady_clock::now();
      DartReport R = D->run(Opts);
      ElapsedSec =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        Start)
              .count();
      return R;
    };
    StaticPruneRow Row;
    Row.Workload = C.Name;
    DartReport On = Run(true, Row.ElapsedOnSec);
    DartReport Off = Run(false, Row.ElapsedOffSec);
    Row.SolverCallsOn = On.SolverCalls;
    Row.SolverCallsOff = Off.SolverCalls;
    Row.Runs = On.Runs;
    Row.Coverage = On.BranchDirectionsCovered;
    Row.Identical = On.Runs == Off.Runs &&
                    On.Bugs.size() == Off.Bugs.size() &&
                    On.BranchDirectionsCovered ==
                        Off.BranchDirectionsCovered &&
                    On.Coverage == Off.Coverage;
    Rows.push_back(Row);
    std::printf("%-22s %-12llu %-12llu %-9llu %-10u %s\n", Row.Workload.c_str(),
                static_cast<unsigned long long>(Row.SolverCallsOn),
                static_cast<unsigned long long>(Row.SolverCallsOff),
                static_cast<unsigned long long>(Row.SolverCallsOff -
                                                Row.SolverCallsOn),
                Row.Runs, Row.Identical ? "yes" : "NO (bug!)");
  }
  writeStaticPruneJson("BENCH_static_prune.json", Rows);
}

/// Snapshot-resume ablation: the same directed session with checkpoint
/// resume on and off, at 1 and 4 workers. The search is observably
/// identical either way (the harness checks runs, coverage and — where
/// the exploration completes or the schedule is sequential — exact bug
/// sets); only executed-instruction counts change. Deep-depth workloads
/// are where resume pays: a flip in call k skips calls 0..k-1. Emits
/// BENCH_exec_snapshot.json.
void printSnapshotAblation() {
  printHeader("Snapshot-resume ablation - executed instructions on/off");
  std::printf("%-22s %-5s %-7s %-13s %-13s %-10s %-9s %s\n", "workload",
              "jobs", "runs", "exec(on)", "exec(off)", "reduction",
              "resumed", "identical search");

  struct Case {
    const char *Name;
    std::string Source;
    const char *Toplevel;
    unsigned Depth;
    unsigned MaxRuns;
  };
  std::vector<Case> Cases = {
      {"config_filters_d32", ConfigFilters, "route", 32, 1000},
      {"ac_controller_d4", workloads::acControllerSource(), "ac_controller",
       4, 2000},
      {"minisip_receive_d32", workloads::miniSipSource(), "sip_receive", 32,
       300},
  };

  std::vector<SnapshotRow> Rows;
  for (const Case &C : Cases) {
    auto D = compileOrDie(C.Source, C.Name);
    for (unsigned Jobs : {1u, 4u}) {
      auto Run = [&](bool Snapshots, double &ElapsedSec) {
        DartOptions Opts;
        Opts.ToplevelName = C.Toplevel;
        Opts.Depth = C.Depth;
        Opts.MaxRuns = C.MaxRuns;
        Opts.Seed = 2005;
        Opts.StopAtFirstError = false;
        Opts.Jobs = Jobs;
        Opts.Snapshots = Snapshots;
        auto Start = std::chrono::steady_clock::now();
        DartReport R = D->run(Opts);
        ElapsedSec =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          Start)
                .count();
        return R;
      };
      SnapshotRow Row;
      Row.Workload = C.Name;
      Row.Jobs = Jobs;
      // Instruction counts are deterministic per configuration; wall-clock
      // is not at the millisecond scale these sessions run at. Interleave
      // on/off repetitions and report the median elapsed of each arm so
      // the table reflects the axis, not scheduler noise.
      constexpr int kElapsedReps = 5;
      std::vector<double> ElapsedOn, ElapsedOff;
      DartReport On, Off;
      for (int Rep = 0; Rep < kElapsedReps; ++Rep) {
        double SecOn = 0.0, SecOff = 0.0;
        On = Run(true, SecOn);
        Off = Run(false, SecOff);
        ElapsedOn.push_back(SecOn);
        ElapsedOff.push_back(SecOff);
      }
      std::sort(ElapsedOn.begin(), ElapsedOn.end());
      std::sort(ElapsedOff.begin(), ElapsedOff.end());
      Row.ElapsedOnSec = ElapsedOn[kElapsedReps / 2];
      Row.ElapsedOffSec = ElapsedOff[kElapsedReps / 2];
      Row.PeakRssMib = peakRssMib();
      Row.Runs = On.Runs;
      Row.ExecutedOn = On.Snapshot.InstructionsExecuted;
      Row.ExecutedOff = Off.Snapshot.InstructionsExecuted;
      Row.Skipped = On.Snapshot.InstructionsSkipped;
      Row.RunsResumed = On.Snapshot.RunsResumed;
      Row.ResumeMisses = On.Snapshot.ResumeMisses;
      Row.PeakResidentBytes = On.Snapshot.PeakResidentBytes;
      Row.Identical = On.Runs == Off.Runs &&
                      On.BranchDirectionsCovered ==
                          Off.BranchDirectionsCovered &&
                      On.Coverage == Off.Coverage &&
                      On.BugFound == Off.BugFound;
      // Budget-truncated parallel searches process a schedule-dependent
      // frontier subset, so exact bug lists are only pinned where the
      // schedule is sequential or the exploration completed.
      if (Jobs == 1 || On.CompleteExploration) {
        auto Sigs = [](const DartReport &R) {
          std::vector<std::string> Out;
          for (const BugInfo &B : R.Bugs) {
            std::string Sig = B.Error.toString();
            for (const auto &[Name, Value] : B.Inputs)
              Sig += " " + Name + "=" + std::to_string(Value);
            Out.push_back(std::move(Sig));
          }
          std::sort(Out.begin(), Out.end());
          return Out;
        };
        Row.Identical = Row.Identical && Sigs(On) == Sigs(Off);
      }
      Rows.push_back(Row);
      char Reduction[32];
      std::snprintf(Reduction, sizeof(Reduction), "%.2fx", Row.reduction());
      std::printf("%-22s %-5u %-7u %-13llu %-13llu %-10s %-9llu %s\n",
                  Row.Workload.c_str(), Row.Jobs, Row.Runs,
                  static_cast<unsigned long long>(Row.ExecutedOn),
                  static_cast<unsigned long long>(Row.ExecutedOff),
                  Reduction,
                  static_cast<unsigned long long>(Row.RunsResumed),
                  Row.Identical ? "yes" : "NO (bug!)");
    }
  }
  writeSnapshotJson("BENCH_exec_snapshot.json", Rows);
}

void BM_CoverageTimelineDirected(benchmark::State &State) {
  auto D = compileOrDie(workloads::acControllerSource(), "AC-controller");
  unsigned Jobs = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    DartOptions Opts;
    Opts.ToplevelName = "ac_controller";
    Opts.Depth = 2;
    Opts.MaxRuns = 100;
    Opts.StopAtFirstError = false;
    Opts.TrackCoverageTimeline = true;
    Opts.Jobs = Jobs;
    DartReport R = D->run(Opts);
    State.counters["covered"] =
        R.CoverageTimeline.empty() ? 0 : R.CoverageTimeline.back();
  }
}
BENCHMARK(BM_CoverageTimelineDirected)->Arg(1)->Arg(2)->Arg(4);

} // namespace

int main(int argc, char **argv) {
  {
    auto D = compileOrDie(workloads::acControllerSource(), "AC-controller");
    printSeries(*D, "Coverage vs. runs - AC-controller, depth 2 (4.1)",
                "ac_controller", 2, 500);
  }
  {
    auto D = compileOrDie(workloads::miniSipSource(), "miniSIP");
    printSeries(*D,
                "Coverage vs. runs - miniSIP sip_auth_check (input filter)",
                "sip_auth_check", 1, 500);
  }
  printParallelScaling();
  printStaticPruneAblation();
  printSnapshotAblation();
  std::printf("\npaper: directed search penetrates input filters and keeps "
              "gaining coverage;\nrandom testing plateaus at the filter "
              "(reaches the equality tests with\nprobability 2^-32 per "
              "run).\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
