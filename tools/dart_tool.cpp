//===- dart_tool.cpp - The `dart` command-line tool -------------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Command-line front end: point DART at a MiniC source file and a toplevel
// function, exactly the "testing any program that compiles, with no
// harness code" workflow the paper advertises.
//
//   dart test   <file.c> --toplevel f [--depth N] [--seed S] [--runs N]
//               [--random-only]
//               [--strategy dfs|bfs|random|distance|diversity|portfolio]
//               [--all-errors] [--symbolic-pointers]
//   dart audit  <file.c> [--runs N]      # every defined function (§4.3)
//   dart analyze <file.c> [--format text|json|sarif] [--triage]  # static lint
//   dart verify <file.c> --toplevel f   # prove-or-test triage: static
//               proofs + a concolic campaign classify every site as
//               PROVED / BUG / UNKNOWN
//   dart iface  <file.c> --toplevel f    # extracted interface (§3.1)
//   dart driver <file.c> --toplevel f [--depth N]  # Fig. 7 driver source
//   dart ir     <file.c>                 # RAM-machine IR dump
//
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"
#include "analysis/StaticSummary.h"
#include "analysis/Verify.h"
#include "core/Dart.h"
#include "jit/Jit.h"
#include "support/Diagnostics.h"

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace dart;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: dart <command> <file.c> [options]\n"
      "\n"
      "commands:\n"
      "  test    run a DART session on --toplevel\n"
      "  audit   run DART on every defined function (library audit)\n"
      "  analyze static lint: unreachable code, guaranteed division by\n"
      "          zero or assert failure, uninitialized reads, dead\n"
      "          stores, guaranteed out-of-bounds accesses and null\n"
      "          dereferences, stack-address escapes, write-only\n"
      "          globals; with --toplevel also dead inputs and\n"
      "          control-unreachable bug sites (exit 0 regardless of\n"
      "          findings unless --exit-code)\n"
      "  verify  prove-or-test triage over --toplevel: every branch\n"
      "          direction, abort/assert site, and lint candidate gets a\n"
      "          verdict — PROVED (path-sensitive infeasibility proof,\n"
      "          invariant chain shown), BUG (concolic witness with the\n"
      "          inputs that reach it), or UNKNOWN (where testing budget\n"
      "          should go); exit 1 when any BUG was witnessed\n"
      "  iface   print the extracted external interface\n"
      "  driver  print the generated test driver source\n"
      "  ir      print the lowered RAM-machine IR\n"
      "\n"
      "options:\n"
      "  --toplevel <name>     function under test (required for "
      "test/iface/driver)\n"
      "  --depth <n>           toplevel calls per run (default 1)\n"
      "  --seed <n>            RNG seed (default 2005)\n"
      "  --runs <n>            run budget (default 10000)\n"
      "  --jobs <n>            worker threads; >1 uses the parallel\n"
      "                        frontier engine (default 1, sequential)\n"
      "  --strategy <s>        dfs | bfs | random | distance | diversity |\n"
      "                        portfolio (default dfs; distance prefers\n"
      "                        flips statically closest to uncovered\n"
      "                        branches, diversity prefers the most novel\n"
      "                        predicted path, portfolio races dfs +\n"
      "                        distance + diversity across --jobs workers)\n"
      "  --format <f>          analyze/verify output: text | json | sarif\n"
      "                        (default text)\n"
      "  --triage              analyze: also run the prover and print the\n"
      "                        PROVED/UNKNOWN triage of every site\n"
      "                        (requires --toplevel; no campaign, so no\n"
      "                        BUG verdicts — use `dart verify` for those)\n"
      "  --verify <on|off>     test/audit: run the prove-or-test verifier\n"
      "                        before the search; proved-infeasible\n"
      "                        directions leave the coverable universe\n"
      "                        (sharper early exit, coverage certificate)\n"
      "                        and stop attracting distance-strategy\n"
      "                        effort (default on)\n"
      "  --exit-code           analyze: exit 1 when any finding is\n"
      "                        reported (for CI gating; default exits 0)\n"
      "  --random-only         pure random testing (no directed search)\n"
      "  --all-errors          keep searching after the first bug\n"
      "  --symbolic-pointers   CUTE-style pointer-choice solving\n"
      "  --static-prune <on|off>  consult the static dataflow summary so\n"
      "                        branches with statically Unsat negations\n"
      "                        never reach the solver (default on; bug\n"
      "                        sets, models and coverage are unchanged)\n"
      "  --slice <on|off>      send the solver only the path-constraint\n"
      "                        conjuncts sharing inputs (transitively)\n"
      "                        with the negated predicate; inputs outside\n"
      "                        the slice keep their previous values\n"
      "                        (default on; the search is observably\n"
      "                        identical either way)\n"
      "  --snapshot <on|off>   resume directed runs from copy-on-write VM\n"
      "                        checkpoints, replaying only the path suffix\n"
      "                        (default on; the search is observably\n"
      "                        identical either way)\n"
      "  --snapshot-budget <mib>  resident checkpoint byte budget in MiB,\n"
      "                        evicted oldest-first; 0 = unbounded\n"
      "                        (default 64)\n"
      "  --jit <on|off>        native x86-64 execution tier (default on;\n"
      "                        the search is byte-identical either way —\n"
      "                        degrades to the interpreter with a warning\n"
      "                        on unsupported hosts and sanitizer builds)\n"
      "  --log-runs            print a one-line summary of every run\n"
      "  --stats               print constraint-pipeline and snapshot\n"
      "                        statistics after the run (for audit:\n"
      "                        aggregated over all functions, including\n"
      "                        sessions that ended at a found bug)\n");
  return 2;
}

/// Strict numeric option parsing: the whole token must be a decimal
/// number within [Min, Max]. A typo like `--runs 1e6`, `--depth=4` passed
/// as one token, or a negative value is a hard error instead of silently
/// truncating to whatever atoi salvages.
bool parseU64(const char *Flag, const char *Text, uint64_t Min, uint64_t Max,
              uint64_t &Out) {
  if (!Text || !*Text) {
    std::fprintf(stderr, "%s expects a number\n", Flag);
    return false;
  }
  errno = 0;
  char *End = nullptr;
  unsigned long long V = strtoull(Text, &End, 10);
  if (*End != '\0' || Text[0] == '-' || errno == ERANGE) {
    std::fprintf(stderr, "%s: '%s' is not a valid non-negative integer\n",
                 Flag, Text);
    return false;
  }
  if (V < Min || V > Max) {
    std::fprintf(stderr, "%s: %llu out of range [%llu, %llu]\n", Flag, V,
                 (unsigned long long)Min, (unsigned long long)Max);
    return false;
  }
  Out = V;
  return true;
}

bool parseUnsigned(const char *Flag, const char *Text, uint64_t Min,
                   uint64_t Max, unsigned &Out) {
  uint64_t V = 0;
  if (!parseU64(Flag, Text, Min, Max, V))
    return false;
  Out = static_cast<unsigned>(V);
  return true;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

enum class OutFormat { Text, Json, Sarif };

struct CliOptions {
  std::string Command;
  std::string File;
  std::string Toplevel;
  DartOptions Dart;
  bool Stats = false;
  OutFormat Format = OutFormat::Text;
  bool Triage = false;
  bool ExitCode = false;
  bool Ok = true;
};

CliOptions parseArgs(int argc, char **argv) {
  CliOptions Cli;
  if (argc < 3) {
    Cli.Ok = false;
    return Cli;
  }
  Cli.Command = argv[1];
  if (Cli.Command == "--analyze") // common spelling; same as `analyze`
    Cli.Command = "analyze";
  Cli.File = argv[2];
  Cli.Dart.Seed = 2005;
  Cli.Dart.MaxRuns = 10000;
  for (int I = 3; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (Arg == "--toplevel") {
      const char *V = Next();
      if (!V) {
        Cli.Ok = false;
        return Cli;
      }
      Cli.Toplevel = V;
    } else if (Arg == "--depth") {
      if (!parseUnsigned("--depth", Next(), 1, 1u << 20, Cli.Dart.Depth)) {
        Cli.Ok = false;
        return Cli;
      }
    } else if (Arg == "--seed") {
      if (!parseU64("--seed", Next(), 0, UINT64_MAX, Cli.Dart.Seed)) {
        Cli.Ok = false;
        return Cli;
      }
    } else if (Arg == "--runs") {
      if (!parseUnsigned("--runs", Next(), 1, UINT32_MAX, Cli.Dart.MaxRuns)) {
        Cli.Ok = false;
        return Cli;
      }
    } else if (Arg == "--jobs") {
      if (!parseUnsigned("--jobs", Next(), 1, 1024, Cli.Dart.Jobs)) {
        Cli.Ok = false;
        return Cli;
      }
    } else if (Arg == "--strategy") {
      // Strict like the numeric options: a typo must not silently fall
      // back to dfs and report a different search than asked for.
      const char *V = Next();
      if (V && std::strcmp(V, "dfs") == 0)
        Cli.Dart.Strategy = SearchStrategy::DepthFirst;
      else if (V && std::strcmp(V, "bfs") == 0)
        Cli.Dart.Strategy = SearchStrategy::BreadthFirst;
      else if (V && std::strcmp(V, "random") == 0)
        Cli.Dart.Strategy = SearchStrategy::RandomBranch;
      else if (V && std::strcmp(V, "distance") == 0)
        Cli.Dart.Strategy = SearchStrategy::Distance;
      else if (V && std::strcmp(V, "diversity") == 0)
        Cli.Dart.Strategy = SearchStrategy::Diversity;
      else if (V && std::strcmp(V, "portfolio") == 0)
        Cli.Dart.Strategy = SearchStrategy::Portfolio;
      else {
        std::fprintf(stderr,
                     "--strategy: '%s' is not one of dfs|bfs|random|"
                     "distance|diversity|portfolio\n",
                     V ? V : "");
        Cli.Ok = false;
        return Cli;
      }
    } else if (Arg == "--format") {
      // Strict like --strategy: junk must not silently print text.
      const char *V = Next();
      if (V && std::strcmp(V, "json") == 0)
        Cli.Format = OutFormat::Json;
      else if (V && std::strcmp(V, "text") == 0)
        Cli.Format = OutFormat::Text;
      else if (V && std::strcmp(V, "sarif") == 0)
        Cli.Format = OutFormat::Sarif;
      else {
        std::fprintf(stderr, "--format expects 'text', 'json' or 'sarif'\n");
        Cli.Ok = false;
        return Cli;
      }
    } else if (Arg == "--triage") {
      Cli.Triage = true;
    } else if (Arg == "--verify") {
      const char *V = Next();
      if (V && std::strcmp(V, "off") == 0)
        Cli.Dart.Verify = false;
      else if (V && std::strcmp(V, "on") == 0)
        Cli.Dart.Verify = true;
      else {
        std::fprintf(stderr, "--verify expects 'on' or 'off'\n");
        Cli.Ok = false;
        return Cli;
      }
    } else if (Arg == "--random-only") {
      Cli.Dart.RandomOnly = true;
    } else if (Arg == "--all-errors") {
      Cli.Dart.StopAtFirstError = false;
    } else if (Arg == "--symbolic-pointers") {
      Cli.Dart.Concolic.SymbolicPointers = true;
    } else if (Arg == "--static-prune") {
      const char *V = Next();
      if (V && std::strcmp(V, "off") == 0)
        Cli.Dart.StaticPrune = false;
      else if (V && std::strcmp(V, "on") == 0)
        Cli.Dart.StaticPrune = true;
      else {
        std::fprintf(stderr, "--static-prune expects 'on' or 'off'\n");
        Cli.Ok = false;
        return Cli;
      }
    } else if (Arg == "--slice") {
      const char *V = Next();
      if (V && std::strcmp(V, "off") == 0)
        Cli.Dart.Solver.SliceQueries = false;
      else if (V && std::strcmp(V, "on") == 0)
        Cli.Dart.Solver.SliceQueries = true;
      else {
        std::fprintf(stderr, "--slice expects 'on' or 'off'\n");
        Cli.Ok = false;
        return Cli;
      }
    } else if (Arg == "--snapshot") {
      const char *V = Next();
      if (V && std::strcmp(V, "off") == 0)
        Cli.Dart.Snapshots = false;
      else if (V && std::strcmp(V, "on") == 0)
        Cli.Dart.Snapshots = true;
      else {
        std::fprintf(stderr, "--snapshot expects 'on' or 'off'\n");
        Cli.Ok = false;
        return Cli;
      }
    } else if (Arg == "--snapshot-budget") {
      uint64_t Mib = 0;
      // 0 = unbounded; cap the MiB count so << 20 cannot overflow.
      if (!parseU64("--snapshot-budget", Next(), 0, uint64_t(1) << 40, Mib)) {
        Cli.Ok = false;
        return Cli;
      }
      Cli.Dart.SnapshotBudgetBytes = Mib << 20;
    } else if (Arg == "--jit") {
      const char *V = Next();
      if (V && std::strcmp(V, "off") == 0) {
        Cli.Dart.Jit = false;
      } else if (V && std::strcmp(V, "on") == 0) {
        Cli.Dart.Jit = true;
        if (!jit::jitSupported())
          std::fprintf(stderr,
                       "warning: --jit on, but native execution is "
                       "unavailable in this build (non-x86-64, sanitizer, "
                       "or -DDART_JIT=OFF); using the interpreter\n");
      } else {
        std::fprintf(stderr, "--jit expects 'on' or 'off'\n");
        Cli.Ok = false;
        return Cli;
      }
    } else if (Arg == "--exit-code") {
      Cli.ExitCode = true;
    } else if (Arg == "--log-runs") {
      Cli.Dart.LogRuns = true;
    } else if (Arg == "--stats") {
      Cli.Stats = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", Arg.c_str());
      Cli.Ok = false;
      return Cli;
    }
  }
  return Cli;
}

/// --stats: the constraint pipeline's internals — interning arena,
/// incremental-session traffic, per-query normalization reuse, and both
/// Unsat caches.
void printPipelineStats(const DartReport &R) {
  const SolverStats &S = R.Solver;
  std::printf("%s\n", R.PointsTo.toString().c_str());
  std::printf("%s\n", R.Dependence.toString().c_str());
  std::printf("constraint pipeline stats:\n");
  std::printf("  arena: %zu predicates, %llu interns, %.1f%% hit rate\n",
              R.Arena.Size, (unsigned long long)R.Arena.Interns,
              100.0 * R.Arena.hitRate());
  std::printf("  sessions: %llu pushes, %llu pops, %llu solves\n",
              (unsigned long long)S.SessionPushes,
              (unsigned long long)S.SessionPops,
              (unsigned long long)S.SessionSolves);
  uint64_t NormTotal = S.Normalizations + S.NormReused;
  std::printf("  normalization: %llu performed, %llu reused (%.1f%% "
              "reuse)\n",
              (unsigned long long)S.Normalizations,
              (unsigned long long)S.NormReused,
              NormTotal ? 100.0 * double(S.NormReused) / double(NormTotal)
                        : 0.0);
  std::printf("  hint seeds: %llu (one per candidate batch)\n",
              (unsigned long long)S.HintSeeds);
  uint64_t QuerySamples = 0;
  for (uint64_t N : S.QuerySizeFull)
    QuerySamples += N;
  std::printf("  query size: median %.1f predicates before slicing, %.1f "
              "sent (%llu of %llu queries sliced, %llu of %llu predicates "
              "elided)\n",
              SolverStats::histogramMedian(S.QuerySizeFull),
              SolverStats::histogramMedian(S.QuerySizeSent),
              (unsigned long long)S.SlicedQueries,
              (unsigned long long)QuerySamples,
              (unsigned long long)(S.SliceFullPreds - S.SliceSentPreds),
              (unsigned long long)S.SliceFullPreds);
  std::printf("  session unsat cache: %llu hits, %llu misses\n",
              (unsigned long long)S.SessionCacheHits,
              (unsigned long long)S.SessionCacheMisses);
  std::printf("  batch query cache: %llu hits, %llu misses\n",
              (unsigned long long)S.CacheHits,
              (unsigned long long)S.CacheMisses);
  if (R.DistanceIncrementalUpdates || R.DistanceFullRecomputes ||
      !R.StrategyMix.empty()) {
    std::printf("strategy stats:\n");
    if (R.DistanceIncrementalUpdates || R.DistanceFullRecomputes)
      std::printf("  distance table: %llu incremental updates, %llu full "
                  "recomputes\n",
                  (unsigned long long)R.DistanceIncrementalUpdates,
                  (unsigned long long)R.DistanceFullRecomputes);
    for (const StrategyAttribution &A : R.StrategyMix)
      std::printf("  %-9s %u worker%s: %llu runs, %llu fresh directions, "
                  "%llu bug runs\n",
                  searchStrategyName(A.Strategy), A.Workers,
                  A.Workers == 1 ? "" : "s", (unsigned long long)A.Runs,
                  (unsigned long long)A.FreshDirections,
                  (unsigned long long)A.Bugs);
    if (R.StoppedEarly)
      std::printf("  stopped early: all coverable branch directions "
                  "covered\n");
  }
  if (R.Verify.DirsConsidered || R.DirsProvedInfeasible) {
    std::printf("verifier stats:\n");
    std::printf("  %s\n", R.Verify.toString().c_str());
    std::printf("  coverable universe: %u directions after proofs, %u "
                "covered%s\n",
                R.CoverableDirsTotal, R.CoverableCovered,
                R.CoverageCertified
                    ? " (branch coverage certified complete)"
                    : "");
  }
  const SnapshotStats &Snap = R.Snapshot;
  std::printf("snapshot stats:\n");
  std::printf("  checkpoints captured: %llu, packs evicted: %llu\n",
              (unsigned long long)Snap.CheckpointsCaptured,
              (unsigned long long)Snap.PacksEvicted);
  std::printf("  runs resumed: %llu, resume misses: %llu\n",
              (unsigned long long)Snap.RunsResumed,
              (unsigned long long)Snap.ResumeMisses);
  std::printf("  instructions: %llu executed, %llu skipped (%.1f%% "
              "resumed)\n",
              (unsigned long long)Snap.InstructionsExecuted,
              (unsigned long long)Snap.InstructionsSkipped,
              100.0 * Snap.resumedInstructionFraction());
  std::printf("  peak resident checkpoint bytes: %llu\n",
              (unsigned long long)Snap.PeakResidentBytes);
  std::printf("  capture time: %.3f ms, materialize time: %.3f ms\n",
              Snap.CaptureNanos / 1e6, Snap.MaterializeNanos / 1e6);
  std::printf("  levels skipped by demand feedback: %llu\n",
              (unsigned long long)Snap.LevelsSkippedByDemand);
  const JitStats &J = R.Jit;
  std::printf("jit stats:\n");
  if (!J.Enabled) {
    std::printf("  disabled (interpreter only)\n");
    return;
  }
  std::printf("  compiled: %llu blocks, %llu whole-function units, %llu "
              "code bytes\n",
              (unsigned long long)J.BlocksCompiled,
              (unsigned long long)J.UnitsCompiled,
              (unsigned long long)J.CodeBytes);
  std::printf("  native entries: %llu, deopts to interpreter: %llu\n",
              (unsigned long long)J.BlockEntries,
              (unsigned long long)J.Deopts);
  uint64_t Total = Snap.InstructionsExecuted;
  std::printf("  instructions: %llu native of %llu executed (%.1f%% "
              "native share)\n",
              (unsigned long long)J.NativeInstrs, (unsigned long long)Total,
              100.0 * J.nativeFraction(Total));
}

int runTest(Dart &D, CliOptions &Cli) {
  if (Cli.Toplevel.empty()) {
    std::fprintf(stderr, "error: 'test' needs --toplevel\n");
    return 2;
  }
  if (!D.ast().findFunction(Cli.Toplevel)) {
    std::fprintf(stderr, "error: no function named '%s'\n",
                 Cli.Toplevel.c_str());
    return 2;
  }
  Cli.Dart.ToplevelName = Cli.Toplevel;
  DartReport R = D.run(Cli.Dart);
  for (const std::string &Line : R.RunLog)
    std::printf("%s\n", Line.c_str());
  std::printf("%s", R.toString().c_str());
  if (Cli.Stats)
    printPipelineStats(R);
  return R.BugFound ? 1 : 0;
}

int runAudit(Dart &D, CliOptions &Cli) {
  unsigned Crashed = 0, Total = 0;
  // Aggregated across every per-function session — crashing ones
  // included, so --stats reflects the whole audit even when sessions end
  // at a found bug.
  DartReport Agg;
  for (const std::string &Fn : D.definedFunctions()) {
    ++Total;
    DartOptions Opts = Cli.Dart;
    Opts.ToplevelName = Fn;
    Opts.Interp.MaxSteps = 1u << 18;
    DartReport R = D.run(Opts);
    Agg.Solver.merge(R.Solver);
    Agg.Arena.Size += R.Arena.Size;
    Agg.Arena.Interns += R.Arena.Interns;
    Agg.Arena.Hits += R.Arena.Hits;
    Agg.Snapshot.merge(R.Snapshot);
    Agg.PointsTo.merge(R.PointsTo);
    if (R.BugFound) {
      ++Crashed;
      std::printf("%-32s CRASH (run %u): %s\n", Fn.c_str(),
                  R.Bugs[0].FoundAtRun, R.Bugs[0].Error.toString().c_str());
    } else {
      std::printf("%-32s ok (%u runs%s)\n", Fn.c_str(), R.Runs,
                  R.CompleteExploration ? ", complete" : "");
    }
  }
  std::printf("\n%u/%u functions crashed (%.0f%%)\n", Crashed, Total,
              Total ? 100.0 * Crashed / Total : 0.0);
  if (Cli.Stats)
    printPipelineStats(Agg);
  return Crashed ? 1 : 0;
}

int runAnalyze(Dart &D, CliOptions &Cli) {
  // A lint report is information, not failure: exit 0 regardless of
  // findings so scripted pipelines don't conflate "found something" with
  // "broke". CI gating opts into exit 1 with --exit-code.
  if (!Cli.Toplevel.empty() && !D.ast().findFunction(Cli.Toplevel)) {
    std::fprintf(stderr, "error: no function named '%s'\n",
                 Cli.Toplevel.c_str());
    return 2;
  }
  if (Cli.Triage) {
    // Static prove-or-test triage: no campaign, so verdicts are PROVED
    // or UNKNOWN only; `dart verify` adds the BUG evidence.
    if (Cli.Toplevel.empty()) {
      std::fprintf(stderr, "error: '--triage' needs --toplevel\n");
      return 2;
    }
    StaticSummary Sum = computeStaticSummary(D.module(), Cli.Toplevel);
    BranchProofs P = proveBranchDirections(D.module(), Cli.Toplevel, Sum,
                                           Cli.Dart.Depth == 1);
    VerifyResult R = runVerifier(D.module(), Cli.Toplevel, Sum, P,
                                 Cli.Dart.Depth == 1);
    switch (Cli.Format) {
    case OutFormat::Text:
      std::printf("%s", verifyResultToText(R).c_str());
      break;
    case OutFormat::Json:
      std::printf("%s\n", verifyResultToJson(R).c_str());
      break;
    case OutFormat::Sarif:
      std::printf("%s\n", verifyResultToSarif(R).c_str());
      break;
    }
    return Cli.ExitCode && R.count(Verdict::Unknown) ? 1 : 0;
  }
  unsigned NumFindings = 0;
  if (Cli.Format != OutFormat::Text) {
    std::vector<LintFinding> Findings =
        runLintAnalysis(D.module(), Cli.Toplevel);
    NumFindings = static_cast<unsigned>(Findings.size());
    std::printf("%s\n",
                Cli.Format == OutFormat::Json
                    ? lintFindingsToJson(Cli.File, Findings).c_str()
                    : lintFindingsToSarif(Cli.File, Findings).c_str());
  } else {
    DiagnosticsEngine Diags;
    NumFindings = runLintPass(D.module(), Diags, Cli.Toplevel);
    for (const Diagnostic &Diag : Diags.diagnostics())
      std::printf("%s:%s\n", Cli.File.c_str(), Diag.toString().c_str());
    if (NumFindings == 0)
      std::printf("%s: no findings\n", Cli.File.c_str());
  }
  return Cli.ExitCode && NumFindings ? 1 : 0;
}

int runVerify(Dart &D, CliOptions &Cli) {
  if (Cli.Toplevel.empty()) {
    std::fprintf(stderr, "error: 'verify' needs --toplevel\n");
    return 2;
  }
  if (!D.ast().findFunction(Cli.Toplevel)) {
    std::fprintf(stderr, "error: no function named '%s'\n",
                 Cli.Toplevel.c_str());
    return 2;
  }
  // Static leg: the prover runs over the pre-proof summary so the triage
  // can distinguish interval-excluded directions from zone/WP proofs.
  StaticSummary Sum = computeStaticSummary(D.module(), Cli.Toplevel);
  BranchProofs P = proveBranchDirections(D.module(), Cli.Toplevel, Sum,
                                         Cli.Dart.Depth == 1);
  VerifyResult R = runVerifier(D.module(), Cli.Toplevel, Sum, P,
                               Cli.Dart.Depth == 1);
  // Dynamic leg: a full campaign (all errors, witnesses on) provides the
  // BUG evidence for everything the prover left UNKNOWN.
  DartOptions Opts = Cli.Dart;
  Opts.ToplevelName = Cli.Toplevel;
  Opts.StopAtFirstError = false;
  Opts.Jobs = 1; // witness capture is sequential-engine only
  Opts.CaptureWitnesses = true;
  DartReport Rep = D.run(Opts);
  CampaignEvidence E;
  E.Coverage = Rep.Coverage;
  for (const BugInfo &B : Rep.Bugs) {
    CampaignEvidence::Error Err;
    Err.Loc = B.Error.Loc;
    Err.Run = B.FoundAtRun;
    Err.Inputs = B.Inputs;
    Err.Message = B.Error.toString();
    E.Errors.push_back(std::move(Err));
  }
  for (const DirectionWitness &W : Rep.Witnesses) {
    CampaignEvidence::DirWitness DW;
    DW.Bit = W.Bit;
    DW.Run = W.Run;
    DW.Directed = W.Directed;
    DW.Inputs = W.Inputs;
    E.Witnesses.push_back(std::move(DW));
  }
  mergeDynamicEvidence(R, E);
  switch (Cli.Format) {
  case OutFormat::Text:
    std::printf("%s", verifyResultToText(R).c_str());
    break;
  case OutFormat::Json:
    std::printf("%s\n", verifyResultToJson(R).c_str());
    break;
  case OutFormat::Sarif:
    std::printf("%s\n", verifyResultToSarif(R).c_str());
    break;
  }
  if (Cli.Stats)
    printPipelineStats(Rep);
  return R.count(Verdict::Bug) ? 1 : 0;
}

} // namespace

int main(int argc, char **argv) {
  CliOptions Cli = parseArgs(argc, argv);
  if (!Cli.Ok)
    return usage();

  std::string Source;
  if (!readFile(Cli.File, Source)) {
    std::fprintf(stderr, "error: cannot read '%s'\n", Cli.File.c_str());
    return 2;
  }
  std::string Errors;
  auto D = Dart::fromSource(Source, &Errors);
  if (!D) {
    std::fprintf(stderr, "%s", Errors.c_str());
    return 2;
  }

  if (Cli.Command == "test")
    return runTest(*D, Cli);
  if (Cli.Command == "audit")
    return runAudit(*D, Cli);
  if (Cli.Command == "analyze")
    return runAnalyze(*D, Cli);
  if (Cli.Command == "verify")
    return runVerify(*D, Cli);
  if (Cli.Command == "iface") {
    if (Cli.Toplevel.empty()) {
      std::fprintf(stderr, "error: 'iface' needs --toplevel\n");
      return 2;
    }
    std::printf("%s", D->interfaceFor(Cli.Toplevel).toString().c_str());
    return 0;
  }
  if (Cli.Command == "driver") {
    if (Cli.Toplevel.empty()) {
      std::fprintf(stderr, "error: 'driver' needs --toplevel\n");
      return 2;
    }
    std::printf("%s",
                D->driverSourceFor(Cli.Toplevel, Cli.Dart.Depth).c_str());
    return 0;
  }
  if (Cli.Command == "ir") {
    std::printf("%s", D->module().toString().c_str());
    return 0;
  }
  return usage();
}
