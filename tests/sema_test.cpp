//===- sema_test.cpp - Unit tests for src/sema ------------------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace dart;
using namespace dart::test;

TEST(Sema, SimpleFunctionChecks) {
  auto TU = check("int add(int a, int b) { return a + b; }");
  ASSERT_NE(TU, nullptr);
  const FunctionDecl *F = TU->findFunction("add");
  const auto *Body = cast<CompoundStmt>(F->body());
  const auto *Ret = cast<ReturnStmt>(Body->body()[0].get());
  EXPECT_EQ(Ret->value()->type(), TU->types().intType());
}

TEST(Sema, UndeclaredVariableRejected) {
  std::string Errors = checkFails("int f(void) { return nope; }");
  EXPECT_NE(Errors.find("undeclared identifier"), std::string::npos);
}

TEST(Sema, ImplicitIntConversionsInserted) {
  auto TU = check("int f(char c) { return c + 1; }");
  const auto *Body =
      cast<CompoundStmt>(TU->findFunction("f")->body());
  const auto *Ret = cast<ReturnStmt>(Body->body()[0].get());
  const auto *Add = cast<BinaryExpr>(Ret->value());
  // `c` is promoted to int via an implicit cast.
  const auto *Cast = dyn_cast<CastExpr>(Add->lhs());
  ASSERT_NE(Cast, nullptr);
  EXPECT_TRUE(Cast->isImplicit());
  EXPECT_EQ(Cast->targetType(), TU->types().intType());
}

TEST(Sema, UsualArithmeticConversions) {
  // long dominates; unsigned dominates int.
  auto TU = check(R"(
    long f(long l, int i) { return l + i; }
    unsigned g(unsigned u, int i) { return u + i; }
  )");
  ASSERT_NE(TU, nullptr);
}

TEST(Sema, AssignmentToRValueRejected) {
  std::string Errors = checkFails("int f(int a) { a + 1 = 2; return a; }");
  EXPECT_NE(Errors.find("lvalue"), std::string::npos);
}

TEST(Sema, VoidDerefRejected) {
  checkFails("int f(void *p) { return *p; }");
}

TEST(Sema, PointerIntComparisonRejectedUnlessNull) {
  check("int f(int *p) { return p == NULL; }");
  check("int f(int *p) { return p == 0; }");
  checkFails("int f(int *p) { return p == 5; }");
}

TEST(Sema, PointerConversionRules) {
  // void* converts freely; distinct pointee types do not.
  check("int f(void *v) { int *p; p = v; return *p; }");
  checkFails("int f(char *c) { int *p; p = c; return *p; }");
}

TEST(Sema, ExplicitPointerCastsAllowed) {
  check("int f(char *c) { int *p; p = (int *)c; return *p; }");
}

TEST(Sema, CallArityChecked) {
  std::string Errors =
      checkFails("int g(int a); int f(void) { return g(1, 2); }");
  EXPECT_NE(Errors.find("argument"), std::string::npos);
}

TEST(Sema, ImplicitFunctionDeclarationBecomesExternal) {
  DiagnosticsEngine Diags;
  auto TU = parseAndCheck("int f(void) { return mystery(3); }", Diags);
  ASSERT_NE(TU, nullptr);
  // A warning (not an error) plus a synthesized prototype.
  bool SawWarning = false;
  for (const auto &D : Diags.diagnostics())
    SawWarning |= D.Severity == DiagSeverity::Warning &&
                  D.Message.find("mystery") != std::string::npos;
  EXPECT_TRUE(SawWarning);
  const FunctionDecl *M = TU->findFunction("mystery");
  ASSERT_NE(M, nullptr);
  EXPECT_FALSE(M->hasBody());
  EXPECT_EQ(M->params().size(), 1u);
}

TEST(Sema, BreakOutsideLoopRejected) {
  checkFails("int f(void) { break; return 0; }");
}

TEST(Sema, ReturnTypeChecked) {
  checkFails("void f(void) { return 3; }");
  checkFails("int f(void) { return; }");
  check("void f(void) { return; }");
}

TEST(Sema, GlobalInitializerMustBeConstant) {
  check("int a = 1 + 2 * 3;");
  check("long b = sizeof(int);");
  check("int c = -(1 << 4);");
  checkFails("int g(void); int a = g();");
}

TEST(Sema, ExternWithInitializerRejected) {
  checkFails("extern int x = 3;");
}

TEST(Sema, StructFieldAccessChecked) {
  check("struct s { int a; }; int f(struct s *p) { return p->a; }");
  checkFails("struct s { int a; }; int f(struct s *p) { return p->b; }");
  checkFails("struct s { int a; }; int f(struct s v) { return v->a; }");
  check("struct s { int a; }; struct s g; int f(void) { return g.a; }");
}

TEST(Sema, IncompleteStructUsageRejected) {
  checkFails("struct s; struct s g;");
  check("struct s; int f(struct s *p) { return p == NULL; }");
  checkFails("struct s; int f(struct s *p) { return p->x; }");
}

TEST(Sema, RecursiveStructByValueRejected) {
  checkFails("struct s { struct s inner; };");
  check("struct s { struct s *next; };");
}

TEST(Sema, StructAssignmentSameTypeOnly) {
  check(R"(
    struct s { int a; int b; };
    void f(struct s *p, struct s *q) { *p = *q; }
  )");
  checkFails(R"(
    struct s { int a; }; struct t { int a; };
    void f(struct s *p, struct t *q) { *p = *q; }
  )");
}

TEST(Sema, ConditionMustBeScalar) {
  checkFails("struct s { int a; }; struct s g; int f(void) { if (g) return 1; return 0; }");
}

TEST(Sema, LocalRedefinitionRejected) {
  checkFails("int f(void) { int a; int a; return 0; }");
  // Shadowing in an inner scope is fine.
  check("int f(void) { int a = 1; { int a = 2; return a; } }");
}

TEST(Sema, FunctionRedefinitionRejected) {
  checkFails("int f(void) { return 0; } int f(void) { return 1; }");
  // Prototype + definition is fine.
  check("int f(void); int f(void) { return 0; }");
}

TEST(Sema, BuiltinSignatures) {
  check(R"(
    int f(void) {
      int *p = (int *)malloc(sizeof(int));
      *p = 3;
      free(p);
      assert(1);
      return 0;
    }
  )");
}

TEST(Sema, ArrayNotAssignable) {
  checkFails("int f(void) { int a[2]; int b[2]; a = b; return 0; }");
}

// Parameterized struct layout checks: C-style padding and alignment.
struct LayoutCase {
  const char *Source;
  const char *StructName;
  unsigned ExpectedSize;
  unsigned ExpectedAlign;
};

class StructLayoutTest : public ::testing::TestWithParam<LayoutCase> {};

TEST_P(StructLayoutTest, SizeAndAlignment) {
  const LayoutCase &C = GetParam();
  auto TU = check(C.Source);
  ASSERT_NE(TU, nullptr);
  const StructDecl *S = nullptr;
  for (const auto &D : TU->decls())
    if (const auto *SD = dyn_cast<StructDecl>(D.get()))
      if (SD->name() == C.StructName)
        S = SD;
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->size(), C.ExpectedSize) << C.Source;
  EXPECT_EQ(S->align(), C.ExpectedAlign) << C.Source;
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, StructLayoutTest,
    ::testing::Values(
        // The paper's §2.5 struct: int + char pads to 8.
        LayoutCase{"struct foo { int i; char c; };", "foo", 8, 4},
        LayoutCase{"struct a { char c; };", "a", 1, 1},
        LayoutCase{"struct b { char c; int i; };", "b", 8, 4},
        LayoutCase{"struct c { char c1; char c2; int i; };", "c", 8, 4},
        LayoutCase{"struct d { int i; long l; };", "d", 16, 8},
        LayoutCase{"struct e { char c; long l; char d; };", "e", 24, 8},
        LayoutCase{"struct f { int *p; char c; };", "f", 16, 8},
        LayoutCase{"struct g { int a[3]; char c; };", "g", 16, 4},
        LayoutCase{"struct in_ { char c; int i; }; "
                   "struct h { char c; struct in_ s; };",
                   "h", 12, 4}));

TEST(Sema, FieldOffsets) {
  auto TU = check("struct s { char c; int i; long l; };");
  const auto *S = cast<StructDecl>(TU->decls()[0].get());
  EXPECT_EQ(S->fields()[0]->offset(), 0u);
  EXPECT_EQ(S->fields()[1]->offset(), 4u);
  EXPECT_EQ(S->fields()[2]->offset(), 8u);
}
