//===- lexer_test.cpp - Unit tests for src/lexer ---------------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lexer/Lexer.h"

#include <gtest/gtest.h>

using namespace dart;

namespace {

std::vector<Token> lex(std::string_view Source) {
  DiagnosticsEngine Diags;
  Lexer L(Source, Diags);
  auto Tokens = L.lexAll();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.toString();
  return Tokens;
}

std::vector<TokenKind> kinds(std::string_view Source) {
  std::vector<TokenKind> Kinds;
  for (const Token &T : lex(Source))
    Kinds.push_back(T.Kind);
  return Kinds;
}

} // namespace

TEST(Lexer, EmptyInput) {
  auto Tokens = lex("");
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Eof);
}

TEST(Lexer, IdentifiersAndKeywords) {
  auto Tokens = lex("int foo _bar if whileX");
  ASSERT_EQ(Tokens.size(), 6u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::KwInt);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[1].Text, "foo");
  EXPECT_EQ(Tokens[2].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[2].Text, "_bar");
  EXPECT_EQ(Tokens[3].Kind, TokenKind::KwIf);
  EXPECT_EQ(Tokens[4].Kind, TokenKind::Identifier)
      << "keyword prefixes must not swallow identifiers";
}

TEST(Lexer, DecimalLiterals) {
  auto Tokens = lex("0 1 42 2147483647 4294967295");
  EXPECT_EQ(Tokens[0].IntValue, 0);
  EXPECT_EQ(Tokens[1].IntValue, 1);
  EXPECT_EQ(Tokens[2].IntValue, 42);
  EXPECT_EQ(Tokens[3].IntValue, 2147483647);
  EXPECT_EQ(Tokens[4].IntValue, 4294967295LL);
}

TEST(Lexer, HexAndOctalLiterals) {
  auto Tokens = lex("0x10 0xff 0XAB 010 07");
  EXPECT_EQ(Tokens[0].IntValue, 16);
  EXPECT_EQ(Tokens[1].IntValue, 255);
  EXPECT_EQ(Tokens[2].IntValue, 0xAB);
  EXPECT_EQ(Tokens[3].IntValue, 8);
  EXPECT_EQ(Tokens[4].IntValue, 7);
}

TEST(Lexer, IntegerSuffixesIgnored) {
  auto Tokens = lex("10u 10L 10UL");
  EXPECT_EQ(Tokens[0].IntValue, 10);
  EXPECT_EQ(Tokens[1].IntValue, 10);
  EXPECT_EQ(Tokens[2].IntValue, 10);
}

TEST(Lexer, CharLiterals) {
  auto Tokens = lex(R"('a' '\n' '\0' '\\' '\x41')");
  EXPECT_EQ(Tokens[0].IntValue, 'a');
  EXPECT_EQ(Tokens[1].IntValue, '\n');
  EXPECT_EQ(Tokens[2].IntValue, 0);
  EXPECT_EQ(Tokens[3].IntValue, '\\');
  EXPECT_EQ(Tokens[4].IntValue, 0x41);
}

TEST(Lexer, StringLiterals) {
  auto Tokens = lex(R"("hello" "a\tb" "")");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::StringLiteral);
  EXPECT_EQ(Tokens[0].StrValue, "hello");
  EXPECT_EQ(Tokens[1].StrValue, "a\tb");
  EXPECT_EQ(Tokens[2].StrValue, "");
}

TEST(Lexer, Comments) {
  auto Kinds = kinds("1 // line comment\n 2 /* block\n comment */ 3");
  ASSERT_EQ(Kinds.size(), 4u);
  EXPECT_EQ(Kinds[0], TokenKind::IntLiteral);
  EXPECT_EQ(Kinds[1], TokenKind::IntLiteral);
  EXPECT_EQ(Kinds[2], TokenKind::IntLiteral);
}

TEST(Lexer, LineAndColumnTracking) {
  auto Tokens = lex("a\n  b");
  EXPECT_EQ(Tokens[0].Loc.Line, 1u);
  EXPECT_EQ(Tokens[0].Loc.Column, 1u);
  EXPECT_EQ(Tokens[1].Loc.Line, 2u);
  EXPECT_EQ(Tokens[1].Loc.Column, 3u);
}

TEST(Lexer, NullKeyword) {
  auto Tokens = lex("NULL");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::KwNull);
}

TEST(Lexer, UnterminatedStringDiagnosed) {
  DiagnosticsEngine Diags;
  Lexer L("\"abc", Diags);
  L.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, UnterminatedBlockCommentDiagnosed) {
  DiagnosticsEngine Diags;
  Lexer L("/* never ends", Diags);
  L.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, UnknownCharacterDiagnosed) {
  DiagnosticsEngine Diags;
  Lexer L("a $ b", Diags);
  auto Tokens = L.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
  // Lexing continues past the bad character.
  EXPECT_EQ(Tokens.back().Kind, TokenKind::Eof);
  EXPECT_EQ(Tokens.size(), 4u);
}

// Parameterized sweep over the full operator table: each spelling must lex
// to exactly its kind (plus Eof).
struct OperatorCase {
  const char *Spelling;
  TokenKind Kind;
};

class LexerOperatorTest : public ::testing::TestWithParam<OperatorCase> {};

TEST_P(LexerOperatorTest, LexesToExactKind) {
  const OperatorCase &C = GetParam();
  auto Tokens = lex(C.Spelling);
  ASSERT_EQ(Tokens.size(), 2u) << C.Spelling;
  EXPECT_EQ(Tokens[0].Kind, C.Kind) << C.Spelling;
}

INSTANTIATE_TEST_SUITE_P(
    AllOperators, LexerOperatorTest,
    ::testing::Values(
        OperatorCase{"(", TokenKind::LParen},
        OperatorCase{")", TokenKind::RParen},
        OperatorCase{"{", TokenKind::LBrace},
        OperatorCase{"}", TokenKind::RBrace},
        OperatorCase{"[", TokenKind::LBracket},
        OperatorCase{"]", TokenKind::RBracket},
        OperatorCase{";", TokenKind::Semi},
        OperatorCase{",", TokenKind::Comma},
        OperatorCase{".", TokenKind::Dot},
        OperatorCase{"->", TokenKind::Arrow},
        OperatorCase{"&", TokenKind::Amp},
        OperatorCase{"&&", TokenKind::AmpAmp},
        OperatorCase{"&=", TokenKind::AmpEq},
        OperatorCase{"|", TokenKind::Pipe},
        OperatorCase{"||", TokenKind::PipePipe},
        OperatorCase{"|=", TokenKind::PipeEq},
        OperatorCase{"^", TokenKind::Caret},
        OperatorCase{"^=", TokenKind::CaretEq},
        OperatorCase{"~", TokenKind::Tilde},
        OperatorCase{"!", TokenKind::Bang},
        OperatorCase{"!=", TokenKind::BangEq},
        OperatorCase{"=", TokenKind::Eq},
        OperatorCase{"==", TokenKind::EqEq},
        OperatorCase{"+", TokenKind::Plus},
        OperatorCase{"++", TokenKind::PlusPlus},
        OperatorCase{"+=", TokenKind::PlusEq},
        OperatorCase{"-", TokenKind::Minus},
        OperatorCase{"--", TokenKind::MinusMinus},
        OperatorCase{"-=", TokenKind::MinusEq},
        OperatorCase{"*", TokenKind::Star},
        OperatorCase{"*=", TokenKind::StarEq},
        OperatorCase{"/", TokenKind::Slash},
        OperatorCase{"/=", TokenKind::SlashEq},
        OperatorCase{"%", TokenKind::Percent},
        OperatorCase{"%=", TokenKind::PercentEq},
        OperatorCase{"<", TokenKind::Less},
        OperatorCase{"<=", TokenKind::LessEq},
        OperatorCase{"<<", TokenKind::Shl},
        OperatorCase{"<<=", TokenKind::ShlEq},
        OperatorCase{">", TokenKind::Greater},
        OperatorCase{">=", TokenKind::GreaterEq},
        OperatorCase{">>", TokenKind::Shr},
        OperatorCase{">>=", TokenKind::ShrEq},
        OperatorCase{"?", TokenKind::Question},
        OperatorCase{":", TokenKind::Colon}));

TEST(Lexer, MaximalMunch) {
  auto Kinds = kinds("a+++b");
  // C maximal munch: a ++ + b.
  ASSERT_EQ(Kinds.size(), 5u);
  EXPECT_EQ(Kinds[1], TokenKind::PlusPlus);
  EXPECT_EQ(Kinds[2], TokenKind::Plus);
}
