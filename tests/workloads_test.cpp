//===- workloads_test.cpp - Tests for the §4 experiment workloads ----------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace dart;
using namespace dart::test;
using namespace dart::workloads;

//===----------------------------------------------------------------------===//
// AC-controller (§4.1)
//===----------------------------------------------------------------------===//

TEST(AcControllerWorkload, CompilesAndMatchesFig6) {
  auto D = compile(acControllerSource());
  ASSERT_NE(D, nullptr);
  ProgramInterface I = D->interfaceFor("ac_controller");
  ASSERT_NE(I.Toplevel, nullptr);
  ASSERT_EQ(I.ToplevelParams.size(), 1u);
  EXPECT_EQ(I.ToplevelParams[0]->name(), "message");
}

TEST(AcControllerWorkload, Depth1CompleteNoError) {
  DartReport R = runDart(acControllerSource(), "ac_controller", 1, 2005);
  EXPECT_FALSE(R.BugFound);
  EXPECT_TRUE(R.CompleteExploration);
  EXPECT_LE(R.Runs, 10u) << "paper: 6 iterations";
}

TEST(AcControllerWorkload, Depth2FindsMessage3Then0) {
  DartReport R = runDart(acControllerSource(), "ac_controller", 2, 2005);
  ASSERT_TRUE(R.BugFound);
  ASSERT_EQ(R.Bugs[0].Inputs.size(), 2u);
  EXPECT_EQ(R.Bugs[0].Inputs[0].second, 3);
  EXPECT_EQ(R.Bugs[0].Inputs[1].second, 0);
  EXPECT_LE(R.Runs, 15u) << "paper: 7 iterations";
}

//===----------------------------------------------------------------------===//
// Needham-Schroeder (§4.2)
//===----------------------------------------------------------------------===//

TEST(NeedhamSchroederWorkload, AllVariantsCompile) {
  for (bool DY : {false, true})
    for (LoweFix Fix :
         {LoweFix::None, LoweFix::Incomplete, LoweFix::Full}) {
      NsConfig C;
      C.DolevYao = DY;
      C.Fix = Fix;
      auto D = compile(needhamSchroederSource(C));
      EXPECT_NE(D, nullptr) << "DY=" << DY;
    }
}

TEST(NeedhamSchroederWorkload, PossibilisticDepth1NoAttack) {
  NsConfig C;
  DartReport R =
      runDart(needhamSchroederSource(C), "ns_step", 1, 7, 50000);
  EXPECT_FALSE(R.BugFound);
  EXPECT_TRUE(R.CompleteExploration);
}

TEST(NeedhamSchroederWorkload, PossibilisticDepth2FindsAttackProjection) {
  // Fig. 9: at depth 2 DART finds steps 2 and 6 of Lowe's attack as seen
  // by the responder.
  NsConfig C;
  DartReport R =
      runDart(needhamSchroederSource(C), "ns_step", 2, 7, 50000);
  ASSERT_TRUE(R.BugFound);
  EXPECT_EQ(R.Bugs[0].Error.Kind, RunErrorKind::AssertFailure);
  // Both messages were addressed to B (key == 2), the first names A (1),
  // the second carries B's nonce (2002).
  std::map<std::string, int64_t> In(R.Bugs[0].Inputs.begin(),
                                    R.Bugs[0].Inputs.end());
  EXPECT_EQ(In["ns_step#0.key"], 2);
  EXPECT_EQ(In["ns_step#0.d2"], 1);
  EXPECT_EQ(In["ns_step#1.key"], 2);
  EXPECT_EQ(In["ns_step#1.d1"], 2002);
}

TEST(NeedhamSchroederWorkload, PossibilisticRandomSearchFindsNothing) {
  NsConfig C;
  auto D = compile(needhamSchroederSource(C));
  DartOptions Opts;
  Opts.ToplevelName = "ns_step";
  Opts.Depth = 2;
  Opts.RandomOnly = true;
  Opts.MaxRuns = 3000;
  Opts.Seed = 5;
  DartReport R = D->run(Opts);
  EXPECT_FALSE(R.BugFound) << "paper: nothing after hours of random search";
}

TEST(NeedhamSchroederWorkload, DolevYaoDepth1And2NoAttack) {
  NsConfig C;
  C.DolevYao = true;
  DartReport R1 =
      runDart(needhamSchroederSource(C), "ns_step", 1, 7, 10000);
  EXPECT_FALSE(R1.BugFound);
  EXPECT_TRUE(R1.CompleteExploration);
  DartReport R2 =
      runDart(needhamSchroederSource(C), "ns_step", 2, 7, 50000);
  EXPECT_FALSE(R2.BugFound);
  EXPECT_TRUE(R2.CompleteExploration);
  EXPECT_GT(R2.Runs, R1.Runs) << "state space grows with depth (Fig. 10)";
}

// The depth-4 Dolev-Yao attack search takes minutes (paper: 18 min; ours:
// ~5 min, 1.3M runs) and runs in bench_needham_schroeder under
// DART_BENCH_FULL=1; the assertion-level behaviour is covered by the
// possibilistic tests above.

//===----------------------------------------------------------------------===//
// miniSIP (§4.3)
//===----------------------------------------------------------------------===//

TEST(MiniSipWorkload, CompilesWithManyExportedFunctions) {
  auto D = compile(miniSipSource());
  ASSERT_NE(D, nullptr);
  EXPECT_GE(D->definedFunctions().size(), 80u);
}

TEST(MiniSipWorkload, UnguardedAccessorCrashes) {
  auto D = compile(miniSipSource());
  DartOptions Opts;
  Opts.ToplevelName = "sip_uri_get_host";
  Opts.MaxRuns = 1000;
  Opts.Seed = 2005;
  DartReport R = D->run(Opts);
  ASSERT_TRUE(R.BugFound);
  EXPECT_EQ(R.Bugs[0].Error.Fault, MemFault::NullDeref);
}

TEST(MiniSipWorkload, GuardedFunctionsSurviveTheBudget) {
  auto D = compile(miniSipSource());
  for (const char *Fn : {"sip_param_list_length", "sip_status_class",
                         "sip_uri_has_user", "sip_via_get_ttl",
                         "sip_header_value_empty", "sip_cseq_compare"}) {
    DartOptions Opts;
    Opts.ToplevelName = Fn;
    Opts.MaxRuns = 300;
    Opts.Seed = 2005;
    DartReport R = D->run(Opts);
    EXPECT_FALSE(R.BugFound) << Fn;
  }
}

TEST(MiniSipWorkload, NullGuardedButStringWalkingStillCrashes) {
  // The inconsistent-guarding idiom: NULL check present, but the scheme
  // string is walked beyond its (short) buffer.
  auto D = compile(miniSipSource());
  DartOptions Opts;
  Opts.ToplevelName = "sip_uri_is_secure";
  Opts.MaxRuns = 1000;
  Opts.Seed = 2005;
  DartReport R = D->run(Opts);
  EXPECT_TRUE(R.BugFound);
}

TEST(MiniSipWorkload, ParserAttackReproduces) {
  // §4.3's headline flaw: a big incoming message makes the internal
  // allocation fail; the unchecked NULL is dereferenced.
  auto D = compile(miniSipSource());
  DartOptions Opts;
  Opts.ToplevelName = "sip_receive";
  Opts.MaxRuns = 500;
  Opts.Seed = 11;
  Opts.Interp.HeapLimitBytes = 5u << 19; // ~2.5 MB
  DartReport R = D->run(Opts);
  ASSERT_TRUE(R.BugFound);
  EXPECT_EQ(R.Bugs[0].Error.Fault, MemFault::NullDeref);
  // The failing length exceeds the allocator budget.
  for (const auto &[Name, Value] : R.Bugs[0].Inputs)
    if (Name.find(".len") != std::string::npos) {
      EXPECT_GT(Value, int64_t(5u << 19));
    }
}

TEST(MiniSipWorkload, FixedParserSurvives) {
  auto D = compile(miniSipSource());
  DartOptions Opts;
  Opts.ToplevelName = "sip_receive_fixed";
  Opts.MaxRuns = 500;
  Opts.Seed = 11;
  Opts.Interp.HeapLimitBytes = 5u << 19;
  DartReport R = D->run(Opts);
  EXPECT_FALSE(R.BugFound) << "oSIP 2.2.0's fix checks the allocation";
}

TEST(MiniSipWorkload, AuditSampleMatchesExpectedShape) {
  // A scaled-down audit (24 functions, small budget) still shows the
  // paper's pattern: a majority of functions crash.
  auto D = compile(miniSipSource());
  auto Fns = D->definedFunctions();
  unsigned Crashed = 0, Total = 0;
  for (size_t I = 0; I < Fns.size() && Total < 24; I += 4, ++Total) {
    DartOptions Opts;
    Opts.ToplevelName = Fns[I];
    Opts.MaxRuns = 200;
    Opts.Seed = 2005;
    Opts.Interp.MaxSteps = 1u << 18;
    DartReport R = D->run(Opts);
    Crashed += R.BugFound ? 1 : 0;
  }
  EXPECT_GE(Crashed * 100, Total * 30) << "well under the expected rate";
  EXPECT_LT(Crashed, Total) << "some functions are genuinely safe";
}
