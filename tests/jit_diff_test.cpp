//===- jit_diff_test.cpp - JIT-vs-interpreter search equivalence ----------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The native tier (DartOptions::Jit) is a pure performance lever: with the
// JIT on and off, a DART session over the same program and seed must
// produce the *same* bug sets, coverage bitmaps, run counts, solver
// schedules, and step totals — compiled fragments replicate the
// interpreter bit-for-bit and every conditional still reaches the
// instrumentation hooks. This suite pins that down over the §4 workloads
// and the examples/minic sources, at --jobs 1 (byte-exact, including every
// model value and run number) and --jobs 4 (content-identical), in random
// and directed modes, and with snapshot-resume both on and off (compiled
// blocks end *at* checkpoint sites, so the interaction matters).
//
// When jitSupported() is false, the --jit on sessions silently run the
// interpreter; the comparisons then still hold trivially, so the suite
// stays green on non-x86-64 and sanitizer builds (the "degrades with a
// warning, not an error" contract).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "jit/Jit.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace dart;
using namespace dart::test;

namespace {

struct Scenario {
  std::string Name;
  std::string Source;
  std::string Toplevel;
  unsigned Depth;
  uint64_t Seed;
  unsigned MaxRuns;
};

std::string readExample(const std::string &FileName) {
  std::ifstream In(std::string(DART_MINIC_DIR) + "/" + FileName);
  EXPECT_TRUE(In.good()) << "cannot read example " << FileName;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

const char *introSource() {
  return R"(
    int f(int x) { return 2 * x; }
    int h(int x, int y) {
      if (x != y)
        if (f(x) == x + 10)
          abort();
      return 0;
    }
  )";
}

/// §4 workloads whose exploration completes within the budget: safe at any
/// job count.
std::vector<Scenario> completingScenarios() {
  return {
      {"intro", introSource(), "h", 1, 42, 200},
      {"ac_controller", workloads::acControllerSource(), "ac_controller", 2,
       2005, 2000},
      {"ac_controller_deep", workloads::acControllerSource(),
       "ac_controller", 4, 2005, 2000},
      {"minisip_get_host", workloads::miniSipSource(), "sip_uri_get_host", 1,
       11, 300},
      {"minisip_receive", workloads::miniSipSource(), "sip_receive", 1, 11,
       300},
  };
}

/// Deep, budget-truncated searches: --jobs 1 only (a truncated parallel
/// frontier is schedule-dependent; see snapshot_diff_test's file comment).
std::vector<Scenario> truncatedDeepScenarios() {
  return {
      {"ac_controller_d8", workloads::acControllerSource(), "ac_controller",
       8, 2005, 1500},
      {"minisip_receive_d32", workloads::miniSipSource(), "sip_receive", 32,
       11, 400},
  };
}

/// The shipped examples/minic sources (read from the source tree).
std::vector<Scenario> minicScenarios() {
  return {
      {"filters_route", readExample("filters.c"), "route", 4, 2005, 1000},
      {"lint_clean_clamp", readExample("lint_clean.c"), "clamp", 4, 7, 500},
      {"lint_seeded", readExample("lint_seeded.c"), "seeded", 1, 3, 200},
  };
}

DartReport runJit(const Scenario &S, bool Jit, unsigned Jobs,
                  bool RandomOnly = false, bool Snapshots = true) {
  auto D = compile(S.Source);
  DartOptions Opts;
  Opts.ToplevelName = S.Toplevel;
  Opts.Depth = S.Depth;
  Opts.Seed = S.Seed;
  Opts.MaxRuns = S.MaxRuns;
  Opts.Jobs = Jobs;
  Opts.StopAtFirstError = false; // collect every distinct error path
  Opts.Jit = Jit;
  Opts.RandomOnly = RandomOnly;
  Opts.Snapshots = Snapshots;
  return D->run(Opts);
}

/// Every bug, with its exact inputs. Run numbers are only meaningful at
/// --jobs 1 (the parallel numbering follows the worker schedule).
std::vector<std::string> bugList(const DartReport &R, bool WithRunNumbers) {
  std::vector<std::string> Out;
  for (const BugInfo &B : R.Bugs) {
    if (WithRunNumbers) {
      Out.push_back(B.toString());
      continue;
    }
    std::string Sig = B.Error.toString();
    for (const auto &[InputName, Value] : B.Inputs)
      Sig += " " + InputName + "=" + std::to_string(Value);
    Out.push_back(std::move(Sig));
  }
  return Out;
}

void expectIdentical(const DartReport &On, const DartReport &Off,
                     const std::string &Name, bool WithRunNumbers) {
  EXPECT_EQ(On.Runs, Off.Runs) << Name;
  EXPECT_EQ(On.Restarts, Off.Restarts) << Name;
  EXPECT_EQ(On.ForcingMismatches, Off.ForcingMismatches) << Name;
  EXPECT_EQ(On.BugFound, Off.BugFound) << Name;
  EXPECT_EQ(bugList(On, WithRunNumbers), bugList(Off, WithRunNumbers))
      << Name;
  EXPECT_EQ(On.CompleteExploration, Off.CompleteExploration) << Name;
  EXPECT_EQ(On.BranchDirectionsCovered, Off.BranchDirectionsCovered) << Name;
  EXPECT_EQ(On.Coverage, Off.Coverage) << Name << ": coverage bitmap";
  EXPECT_EQ(On.SolverCalls, Off.SolverCalls) << Name;
  // Native fragments only retire instructions the interpreter would have
  // retired: even the step totals agree.
  EXPECT_EQ(On.TotalSteps, Off.TotalSteps) << Name;
  // And the interpreter baseline must truly not have dispatched natively.
  EXPECT_FALSE(Off.Jit.Enabled) << Name;
  EXPECT_EQ(Off.Jit.NativeInstrs, 0u) << Name;
}

} // namespace

TEST(JitDiff, SequentialByteIdenticalAcrossTiers) {
  uint64_t TotalNative = 0;
  std::vector<Scenario> All = completingScenarios();
  for (Scenario &S : truncatedDeepScenarios())
    All.push_back(std::move(S));
  for (const Scenario &S : All) {
    DartReport On = runJit(S, /*Jit=*/true, /*Jobs=*/1);
    DartReport Off = runJit(S, /*Jit=*/false, /*Jobs=*/1);
    expectIdentical(On, Off, S.Name, /*WithRunNumbers=*/true);
    TotalNative += On.Jit.NativeInstrs;
  }
  if (jit::jitSupported()) {
    EXPECT_GT(TotalNative, 0u) << "the native tier was never exercised";
  }
}

TEST(JitDiff, ParallelIdenticalAcrossTiers) {
  for (const Scenario &S : completingScenarios()) {
    DartReport On = runJit(S, /*Jit=*/true, /*Jobs=*/4);
    DartReport Off = runJit(S, /*Jit=*/false, /*Jobs=*/4);
    expectIdentical(On, Off, S.Name, /*WithRunNumbers=*/false);
  }
}

TEST(JitDiff, MinicExamplesIdenticalAtBothJobCounts) {
  for (const Scenario &S : minicScenarios()) {
    DartReport On1 = runJit(S, /*Jit=*/true, /*Jobs=*/1);
    DartReport Off1 = runJit(S, /*Jit=*/false, /*Jobs=*/1);
    expectIdentical(On1, Off1, S.Name + "/j1", /*WithRunNumbers=*/true);
    DartReport On4 = runJit(S, /*Jit=*/true, /*Jobs=*/4);
    DartReport Off4 = runJit(S, /*Jit=*/false, /*Jobs=*/4);
    expectIdentical(On4, Off4, S.Name + "/j4", /*WithRunNumbers=*/false);
  }
}

TEST(JitDiff, IdenticalWithSnapshotResumeOnAndOff) {
  // Checkpoint interaction: compiled blocks end *at* conditionals, where
  // checkpoints capture, so the four (jit, snapshots) combinations must
  // all agree — resumed runs re-enter native code mid-path.
  std::vector<Scenario> Some = {completingScenarios()[1],
                                completingScenarios()[4]};
  for (const Scenario &S : Some) {
    for (unsigned Jobs : {1u, 4u}) {
      bool Exact = Jobs == 1;
      DartReport JitSnap = runJit(S, true, Jobs, false, /*Snapshots=*/true);
      DartReport JitNoSnap =
          runJit(S, true, Jobs, false, /*Snapshots=*/false);
      DartReport IntSnap = runJit(S, false, Jobs, false, /*Snapshots=*/true);
      expectIdentical(JitSnap, IntSnap, S.Name + "/snap", Exact);
      EXPECT_EQ(JitSnap.Runs, JitNoSnap.Runs) << S.Name;
      EXPECT_EQ(JitSnap.TotalSteps, JitNoSnap.TotalSteps) << S.Name;
      EXPECT_EQ(bugList(JitSnap, Exact), bugList(JitNoSnap, Exact))
          << S.Name;
      if (jit::jitSupported() && Jobs == 1) {
        EXPECT_GT(JitSnap.Jit.NativeInstrs, 0u) << S.Name;
      }
    }
  }
}

TEST(JitDiff, RandomOnlyIdenticalAcrossTiers) {
  // The §4.1 random-testing baseline takes the hook-free whole-function
  // tier — a different code path from the hook-safe blocks.
  Scenario S{"ac_controller_random", workloads::acControllerSource(),
             "ac_controller", 6, 2005, 4000};
  for (unsigned Jobs : {1u, 4u}) {
    DartReport On = runJit(S, /*Jit=*/true, Jobs, /*RandomOnly=*/true);
    DartReport Off = runJit(S, /*Jit=*/false, Jobs, /*RandomOnly=*/true);
    std::string Name = S.Name + "/j" + std::to_string(Jobs);
    EXPECT_EQ(On.Runs, Off.Runs) << Name;
    EXPECT_EQ(On.BugFound, Off.BugFound) << Name;
    EXPECT_EQ(bugList(On, Jobs == 1), bugList(Off, Jobs == 1)) << Name;
    EXPECT_EQ(On.TotalSteps, Off.TotalSteps) << Name;
    if (jit::jitSupported()) {
      EXPECT_GT(On.Jit.NativeInstrs, 0u) << Name;
    }
  }
}
