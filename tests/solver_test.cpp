//===- solver_test.cpp - Unit tests for src/solver ---------------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/LinearSolver.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace dart;

namespace {

VarDomain intDomain() { return VarDomain{INT32_MIN, INT32_MAX}; }

std::function<VarDomain(InputId)> allInt() {
  return [](InputId) { return intDomain(); };
}

LinearExpr var(InputId Id) { return LinearExpr::variable(Id); }
LinearExpr lin(InputId Id, int64_t Coeff, int64_t Const) {
  return *LinearExpr::variable(Id).scale(Coeff)->add(LinearExpr(Const));
}

/// Checks that a model satisfies every constraint.
void checkModel(const std::vector<SymPred> &Cs,
                const std::map<InputId, int64_t> &Model) {
  auto ValueOf = [&](InputId Id) {
    auto It = Model.find(Id);
    return It == Model.end() ? 0 : It->second;
  };
  for (const SymPred &P : Cs)
    EXPECT_TRUE(P.holds(ValueOf)) << P.toString() << " violated";
}

SolveStatus solve(const std::vector<SymPred> &Cs,
                  std::map<InputId, int64_t> &Model,
                  SolverOptions Opts = {},
                  const std::map<InputId, int64_t> &Hint = {}) {
  LinearSolver S(Opts);
  SolveStatus St = S.solve(Cs, allInt(), Hint, Model);
  if (St == SolveStatus::Sat)
    checkModel(Cs, Model);
  return St;
}

} // namespace

TEST(Solver, EmptySystemIsSat) {
  std::map<InputId, int64_t> Model;
  EXPECT_EQ(solve({}, Model), SolveStatus::Sat);
}

TEST(Solver, SingleEquality) {
  std::map<InputId, int64_t> Model;
  // x - 10 == 0
  EXPECT_EQ(solve({SymPred(CmpPred::Eq, lin(0, 1, -10))}, Model),
            SolveStatus::Sat);
  EXPECT_EQ(Model[0], 10);
}

// Each predicate solves and the model satisfies it.
class SolverPredTest : public ::testing::TestWithParam<CmpPred> {};

TEST_P(SolverPredTest, SingleConstraintSat) {
  std::map<InputId, int64_t> Model;
  EXPECT_EQ(solve({SymPred(GetParam(), lin(0, 1, -5))}, Model),
            SolveStatus::Sat);
}

INSTANTIATE_TEST_SUITE_P(AllPreds, SolverPredTest,
                         ::testing::Values(CmpPred::Eq, CmpPred::Ne,
                                           CmpPred::Lt, CmpPred::Le,
                                           CmpPred::Gt, CmpPred::Ge));

TEST(Solver, ContradictionIsUnsat) {
  std::map<InputId, int64_t> Model;
  EXPECT_EQ(solve({SymPred(CmpPred::Eq, lin(0, 1, -1)),
                   SymPred(CmpPred::Eq, lin(0, 1, -2))},
                  Model),
            SolveStatus::Unsat);
}

TEST(Solver, IntervalConjunction) {
  // 3 <= x <= 7, x != 5, x != 3 -> x in {4, 6, 7}.
  std::map<InputId, int64_t> Model;
  EXPECT_EQ(solve({SymPred(CmpPred::Ge, lin(0, 1, -3)),
                   SymPred(CmpPred::Le, lin(0, 1, -7)),
                   SymPred(CmpPred::Ne, lin(0, 1, -5)),
                   SymPred(CmpPred::Ne, lin(0, 1, -3))},
                  Model),
            SolveStatus::Sat);
}

TEST(Solver, EmptyIntervalUnsat) {
  std::map<InputId, int64_t> Model;
  EXPECT_EQ(solve({SymPred(CmpPred::Gt, lin(0, 1, -7)),
                   SymPred(CmpPred::Lt, lin(0, 1, -7))},
                  Model),
            SolveStatus::Unsat);
}

TEST(Solver, ExcludedPointInUnitIntervalUnsat) {
  // x == 7 and x != 7.
  std::map<InputId, int64_t> Model;
  EXPECT_EQ(solve({SymPred(CmpPred::Eq, lin(0, 1, -7)),
                   SymPred(CmpPred::Ne, lin(0, 1, -7))},
                  Model),
            SolveStatus::Unsat);
}

TEST(Solver, DivisibilityViaEquality) {
  // 2x - 7 == 0 has no integer solution.
  std::map<InputId, int64_t> Model;
  EXPECT_EQ(solve({SymPred(CmpPred::Eq, lin(0, 2, -7))}, Model),
            SolveStatus::Unsat);
  // 2x - 8 == 0 -> x == 4.
  EXPECT_EQ(solve({SymPred(CmpPred::Eq, lin(0, 2, -8))}, Model),
            SolveStatus::Sat);
  EXPECT_EQ(Model[0], 4);
}

TEST(Solver, TwoVariableEquality) {
  // The paper's §2.1 system: x != y, 2x == x + 10 (i.e. x - 10 == 0 after
  // symbolic evaluation).
  auto XMinusY = *var(0).sub(var(1));
  std::map<InputId, int64_t> Model;
  EXPECT_EQ(solve({SymPred(CmpPred::Ne, XMinusY),
                   SymPred(CmpPred::Eq, lin(0, 1, -10))},
                  Model),
            SolveStatus::Sat);
  EXPECT_EQ(Model[0], 10);
  EXPECT_NE(Model[1], 10);
}

TEST(Solver, MultiVariableSystem) {
  // x + y == 10, x - y == 4  ->  x = 7, y = 3.
  auto Sum = *var(0).add(var(1));
  auto Diff = *var(0).sub(var(1));
  std::map<InputId, int64_t> Model;
  EXPECT_EQ(solve({SymPred(CmpPred::Eq, *Sum.add(LinearExpr(-10))),
                   SymPred(CmpPred::Eq, *Diff.add(LinearExpr(-4)))},
                  Model),
            SolveStatus::Sat);
  EXPECT_EQ(Model[0], 7);
  EXPECT_EQ(Model[1], 3);
}

TEST(Solver, ChainOfInequalities) {
  // x < y, y < z, z < x is unsat.
  auto XY = *var(0).sub(var(1));
  auto YZ = *var(1).sub(var(2));
  auto ZX = *var(2).sub(var(0));
  std::map<InputId, int64_t> Model;
  EXPECT_EQ(solve({SymPred(CmpPred::Lt, XY), SymPred(CmpPred::Lt, YZ),
                   SymPred(CmpPred::Lt, ZX)},
                  Model),
            SolveStatus::Unsat);
  // Drop one: satisfiable.
  EXPECT_EQ(solve({SymPred(CmpPred::Lt, XY), SymPred(CmpPred::Lt, YZ)},
                  Model),
            SolveStatus::Sat);
}

TEST(Solver, DomainsRespected) {
  LinearSolver S;
  std::map<InputId, int64_t> Model;
  auto ByteDomain = [](InputId) { return VarDomain{-128, 127}; };
  // x > 200 is unsat for a char input.
  EXPECT_EQ(S.solve({SymPred(CmpPred::Gt, lin(0, 1, -200))}, ByteDomain, {},
                    Model),
            SolveStatus::Unsat);
  // x > 100 is sat: 101..127.
  EXPECT_EQ(S.solve({SymPred(CmpPred::Gt, lin(0, 1, -100))}, ByteDomain, {},
                    Model),
            SolveStatus::Sat);
  EXPECT_GT(Model[0], 100);
  EXPECT_LE(Model[0], 127);
}

TEST(Solver, HintPreferred) {
  std::map<InputId, int64_t> Model;
  // x >= 0 with hint x=42 keeps 42.
  EXPECT_EQ(solve({SymPred(CmpPred::Ge, var(0))}, Model, {}, {{0, 42}}),
            SolveStatus::Sat);
  EXPECT_EQ(Model[0], 42);
  // Hint outside the feasible set is corrected.
  EXPECT_EQ(solve({SymPred(CmpPred::Ge, lin(0, 1, -50))}, Model, {},
                  {{0, 42}}),
            SolveStatus::Sat);
  EXPECT_GE(Model[0], 50);
}

TEST(Solver, HintPreferredInGeneralPath) {
  // Multi-variable so the fast path does not trigger: x + y >= 0, hint
  // both to 5.
  auto Sum = *var(0).add(var(1));
  std::map<InputId, int64_t> Model;
  SolveStatus St =
      solve({SymPred(CmpPred::Ge, Sum)}, Model, {}, {{0, 5}, {1, 5}});
  EXPECT_EQ(St, SolveStatus::Sat);
  EXPECT_EQ(Model[0], 5);
  EXPECT_EQ(Model[1], 5);
}

TEST(Solver, DisequalityBranchingInGeneralPath) {
  // x + y == 0 and x != 0 forces a branch on the disequality.
  auto Sum = *var(0).add(var(1));
  std::map<InputId, int64_t> Model;
  SolverOptions Opts;
  EXPECT_EQ(solve({SymPred(CmpPred::Eq, Sum), SymPred(CmpPred::Ne, var(0))},
                  Model, Opts),
            SolveStatus::Sat);
}

TEST(Solver, FastPathDisabledStillSolves) {
  SolverOptions Opts;
  Opts.EnableFastPath = false;
  std::map<InputId, int64_t> Model;
  EXPECT_EQ(solve({SymPred(CmpPred::Eq, lin(0, 1, -10)),
                   SymPred(CmpPred::Ne, lin(1, 1, 0))},
                  Model, Opts),
            SolveStatus::Sat);
  EXPECT_EQ(Model[0], 10);
  EXPECT_NE(Model[1], 0);
}

TEST(Solver, StatsAccumulate) {
  LinearSolver S;
  std::map<InputId, int64_t> Model;
  S.solve({SymPred(CmpPred::Eq, lin(0, 1, -1))}, allInt(), {}, Model);
  S.solve({SymPred(CmpPred::Eq, lin(0, 1, -1)),
           SymPred(CmpPred::Eq, lin(0, 1, -2))},
          allInt(), {}, Model);
  EXPECT_EQ(S.stats().Queries, 2u);
  EXPECT_EQ(S.stats().Sat, 1u);
  EXPECT_EQ(S.stats().Unsat, 1u);
  EXPECT_EQ(S.stats().FastPathQueries, 2u);
  S.resetStats();
  EXPECT_EQ(S.stats().Queries, 0u);
}

TEST(Solver, QueryCacheMemoizesUnsat) {
  LinearSolver S;
  std::map<InputId, int64_t> Model;
  std::vector<SymPred> Unsat = {SymPred(CmpPred::Eq, lin(0, 1, -1)),
                                SymPred(CmpPred::Eq, lin(0, 1, -2))};
  EXPECT_EQ(S.solve(Unsat, allInt(), {}, Model), SolveStatus::Unsat);
  EXPECT_EQ(S.stats().CacheHits, 0u);
  EXPECT_EQ(S.solve(Unsat, allInt(), {}, Model), SolveStatus::Unsat);
  EXPECT_EQ(S.stats().CacheHits, 1u);
  EXPECT_EQ(S.stats().Unsat, 2u) << "hits still count as unsat verdicts";
}

TEST(Solver, QueryCacheNeverCachesSat) {
  // Sat answers depend on the hint (IM + IM' prefers old values), so the
  // same conjunction must be re-solved under a different hint.
  LinearSolver S;
  std::map<InputId, int64_t> Model;
  std::vector<SymPred> Sat = {SymPred(CmpPred::Ge, lin(0, 1, 0))};
  EXPECT_EQ(S.solve(Sat, allInt(), {{0, 7}}, Model), SolveStatus::Sat);
  EXPECT_EQ(Model[0], 7);
  EXPECT_EQ(S.solve(Sat, allInt(), {{0, 9}}, Model), SolveStatus::Sat);
  EXPECT_EQ(Model[0], 9) << "second hint honoured, not a cached model";
  EXPECT_EQ(S.stats().CacheHits, 0u);
}

TEST(Solver, QueryCacheDisabledByOption) {
  SolverOptions Opts;
  Opts.EnableQueryCache = false;
  LinearSolver S(Opts);
  std::map<InputId, int64_t> Model;
  std::vector<SymPred> Unsat = {SymPred(CmpPred::Eq, lin(0, 1, -1)),
                                SymPred(CmpPred::Eq, lin(0, 1, -2))};
  S.solve(Unsat, allInt(), {}, Model);
  S.solve(Unsat, allInt(), {}, Model);
  EXPECT_EQ(S.stats().CacheHits, 0u);
  EXPECT_EQ(S.stats().CacheMisses, 0u);
}

TEST(Solver, QueryCacheKeyIncludesDomains) {
  // x >= 1000 is Unsat over a byte domain but Sat over int: the domain is
  // part of the key, so the byte verdict must not leak into the int query.
  LinearSolver S;
  std::map<InputId, int64_t> Model;
  std::vector<SymPred> Cs = {SymPred(CmpPred::Ge, lin(0, 1, -1000))};
  auto ByteDomain = [](InputId) { return VarDomain{-128, 127}; };
  EXPECT_EQ(S.solve(Cs, ByteDomain, {}, Model), SolveStatus::Unsat);
  EXPECT_EQ(S.solve(Cs, allInt(), {}, Model), SolveStatus::Sat);
  EXPECT_EQ(S.stats().CacheHits, 0u);
}

TEST(Solver, SharedQueryCacheCrossesSolverInstances) {
  // Parallel workers share one cache: a prefix proven Unsat by one worker
  // is a hit for every other worker.
  SolverQueryCache Cache;
  LinearSolver A, B;
  A.setSharedCache(&Cache);
  B.setSharedCache(&Cache);
  std::map<InputId, int64_t> Model;
  std::vector<SymPred> Unsat = {SymPred(CmpPred::Eq, lin(0, 1, -1)),
                                SymPred(CmpPred::Eq, lin(0, 1, -2))};
  EXPECT_EQ(A.solve(Unsat, allInt(), {}, Model), SolveStatus::Unsat);
  EXPECT_EQ(B.solve(Unsat, allInt(), {}, Model), SolveStatus::Unsat);
  EXPECT_EQ(A.stats().CacheHits, 0u);
  EXPECT_EQ(B.stats().CacheHits, 1u);
  EXPECT_EQ(Cache.size(), 1u);
}

TEST(Solver, StatsMerge) {
  SolverStats A, B;
  A.Queries = 3;
  A.Sat = 2;
  A.CacheHits = 1;
  B.Queries = 5;
  B.Unsat = 4;
  B.CacheMisses = 2;
  A.merge(B);
  EXPECT_EQ(A.Queries, 8u);
  EXPECT_EQ(A.Sat, 2u);
  EXPECT_EQ(A.Unsat, 4u);
  EXPECT_EQ(A.CacheHits, 1u);
  EXPECT_EQ(A.CacheMisses, 2u);
}

// Property: on random univariate systems the fast path and the general
// path agree on satisfiability, and both produce valid models.
TEST(Solver, FastPathMatchesGeneralPathProperty) {
  Rng R(2024);
  for (int Trial = 0; Trial < 300; ++Trial) {
    std::vector<SymPred> Cs;
    unsigned N = 1 + R.nextBelow(4);
    for (unsigned I = 0; I < N; ++I) {
      CmpPred P = static_cast<CmpPred>(R.nextBelow(6));
      Cs.push_back(SymPred(P, lin(0, 1, R.nextBits(6))));
    }
    SolverOptions Fast, Slow;
    Slow.EnableFastPath = false;
    LinearSolver SF(Fast), SS(Slow);
    std::map<InputId, int64_t> MF, MS;
    SolveStatus StF = SF.solve(Cs, allInt(), {}, MF);
    SolveStatus StS = SS.solve(Cs, allInt(), {}, MS);
    if (StF == SolveStatus::Sat)
      checkModel(Cs, MF);
    if (StS == SolveStatus::Sat)
      checkModel(Cs, MS);
    // Unknown is allowed to disagree; Sat/Unsat must match.
    if (StF != SolveStatus::Unknown && StS != SolveStatus::Unknown) {
      EXPECT_EQ(StF, StS) << "trial " << Trial;
    }
  }
}

// Property: random 2-3 variable systems with unit coefficients — whenever
// the solver claims Sat, the model is valid; whenever a known-satisfying
// witness exists, it must not claim Unsat.
TEST(Solver, RandomSystemsSoundnessProperty) {
  Rng R(99);
  for (int Trial = 0; Trial < 300; ++Trial) {
    // Build constraints satisfied by a hidden witness so SAT is known.
    std::map<InputId, int64_t> Witness;
    unsigned NumVars = 2 + R.nextBelow(2);
    for (InputId Id = 0; Id < NumVars; ++Id)
      Witness[Id] = R.nextBits(8);
    auto ValueOf = [&](InputId Id) { return Witness[Id]; };
    std::vector<SymPred> Cs;
    for (unsigned I = 0; I < 4; ++I) {
      LinearExpr E(static_cast<int64_t>(R.nextBits(5)));
      for (InputId Id = 0; Id < NumVars; ++Id)
        if (R.coinToss())
          E = *E.add(*var(Id).scale(R.coinToss() ? 1 : -1));
      int64_t V = E.evaluate(ValueOf);
      // Choose a predicate that the witness satisfies.
      CmpPred P;
      if (V == 0)
        P = CmpPred::Eq;
      else if (V > 0)
        P = R.coinToss() ? CmpPred::Gt : CmpPred::Ge;
      else
        P = R.coinToss() ? CmpPred::Lt : CmpPred::Le;
      Cs.push_back(SymPred(P, E));
    }
    std::map<InputId, int64_t> Model;
    SolveStatus St = solve(Cs, Model);
    EXPECT_NE(St, SolveStatus::Unsat)
        << "system has a witness, must not be Unsat (trial " << Trial
        << ")";
  }
}
