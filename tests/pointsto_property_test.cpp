//===- pointsto_property_test.cpp - Points-to vs concrete address traces ---===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The soundness contract of PointsTo.h, checked dynamically: for every
// Store and Copy the VM actually executes, the concrete target (and
// source) cell resolves to an abstract location that is a member of
// addressTargets of the instruction's address expression. The probe runs
// pure random testing over the §4 workloads — every committed memory
// operation of every run is one property sample.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "analysis/PointsTo.h"
#include "core/DartEngine.h"
#include "core/TestDriver.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

using namespace dart;
using namespace dart::test;

namespace {

/// Watches every committed Store/Copy, resolves the concrete address
/// against the live frames and the globals, and records a violation when
/// the resolved abstract location is missing from the static target set.
class AddressTraceObserver : public ExecHooks {
public:
  AddressTraceObserver(const Interp &VM, const IRModule &M,
                       const PointsToResult &PT)
      : VM(VM), M(M), PT(PT) {
    for (unsigned Fn = 0; Fn < M.functions().size(); ++Fn)
      FnIndexOf[M.functions()[Fn].get()] = Fn;
  }

  void onStore(EvalContext &Ctx, Addr Address, ValType VT,
               const IRExpr *ValueExpr, int64_t Value) override {
    (void)Ctx;
    (void)VT;
    (void)ValueExpr;
    (void)Value;
    const StoreInstr *St = currentInstrAs<StoreInstr>();
    if (St)
      checkAccess(St->address(), Address, "store");
  }

  void onCopy(EvalContext &Ctx, Addr Dst, Addr Src,
              uint64_t Size) override {
    (void)Ctx;
    (void)Size;
    const CopyInstr *Cp = currentInstrAs<CopyInstr>();
    if (!Cp)
      return;
    checkAccess(Cp->dst(), Dst, "copy-dst");
    checkAccess(Cp->src(), Src, "copy-src");
  }

  std::vector<std::string> Violations;
  uint64_t Samples = 0;

private:
  /// The instruction the top frame is currently executing, if it has the
  /// expected kind (store hooks also fire for call-return and native
  /// results, where the frame's pc rests on the CallInstr instead).
  template <typename T> const T *currentInstrAs() const {
    if (VM.frames().empty())
      return nullptr;
    const Interp::Frame &F = VM.frames().back();
    if (F.PC >= F.Fn->Instrs.size())
      return nullptr;
    return dyn_cast<T>(F.Fn->Instrs[F.PC].get());
  }

  void checkAccess(const IRExpr *AddrExpr, Addr Address, const char *What) {
    ++Samples;
    const Interp::Frame &F = VM.frames().back();
    auto FnIt = FnIndexOf.find(F.Fn);
    ASSERT_NE(FnIt, FnIndexOf.end());
    unsigned Fn = FnIt->second;
    std::vector<unsigned> Targets = PT.addressTargets(Fn, AddrExpr);

    bool Ok = false;
    if (int Loc = resolve(Address); Loc >= 0) {
      // Stack slot or global: the exact abstract location must be in the
      // target set (External, id 0, over-approximates escaped storage).
      Ok = std::find(Targets.begin(), Targets.end(), unsigned(Loc)) !=
               Targets.end() ||
           std::find(Targets.begin(), Targets.end(), PT.externalLoc()) !=
               Targets.end();
    } else {
      // Heap or driver-allocated storage: the trace cannot recover the
      // allocation site, so any heap location (or External) in the
      // target set witnesses the access.
      for (unsigned T : Targets)
        if (T == PT.externalLoc() ||
            PT.kindOf(T) == PointsToResult::LocKind::Heap) {
          Ok = true;
          break;
        }
    }
    if (!Ok) {
      std::ostringstream OS;
      OS << What << " in '" << F.Fn->Name << "' at pc " << F.PC
         << ": concrete address " << Address << " not covered by "
         << Targets.size() << " static targets";
      Violations.push_back(OS.str());
    }
  }

  /// Concrete address -> abstract location id, walking every live frame's
  /// slots and the module globals. -1 when the address belongs to neither
  /// (heap region).
  int resolve(Addr Address) const {
    for (const Interp::Frame &F : VM.frames()) {
      auto It = FnIndexOf.find(F.Fn);
      if (It == FnIndexOf.end())
        continue;
      for (unsigned S = 0; S < F.SlotAddrs.size(); ++S)
        if (Address >= F.SlotAddrs[S] &&
            Address < F.SlotAddrs[S] + F.Fn->Slots[S].SizeBytes)
          return int(PT.slotLoc(It->second, S));
    }
    for (unsigned G = 0; G < M.globals().size(); ++G) {
      Addr Base = VM.globalAddr(G);
      if (Address >= Base && Address < Base + M.globals()[G].SizeBytes)
        return int(PT.globalLoc(G));
    }
    return -1;
  }

  const Interp &VM;
  const IRModule &M;
  const PointsToResult &PT;
  std::map<const IRFunction *, unsigned> FnIndexOf;
};

/// Random-tests \p Toplevel for \p Runs runs with the observer installed
/// and expects zero violations. When \p DirectArgs is non-empty the
/// driver is bypassed and the toplevel is called with each argument
/// vector instead (scalar-parameter workloads, where uniform random
/// inputs would miss every guarded store).
void checkWorkload(const std::string &Source, const std::string &Toplevel,
                   unsigned Depth, unsigned Runs, uint64_t Seed,
                   const std::vector<std::vector<int64_t>> &DirectArgs = {}) {
  DiagnosticsEngine Diags;
  auto TU = parseAndCheck(Source, Diags);
  ASSERT_NE(TU, nullptr) << Diags.toString();
  LoweredProgram Program = lowerToIR(*TU, Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.toString();

  PointsToResult PT = runPointsToAnalysis(*Program.Module, Toplevel);
  ProgramInterface Interface = extractInterface(*TU, Toplevel);
  ASSERT_NE(Interface.Toplevel, nullptr) << Toplevel;

  DartOptions Options;
  Options.ToplevelName = Toplevel;
  Options.Depth = Depth;
  Options.Interp.MaxSteps = 1u << 18;

  uint64_t Samples = 0;
  auto Flush = [&](const AddressTraceObserver &Observer,
                   unsigned Run) -> bool {
    for (const std::string &V : Observer.Violations)
      ADD_FAILURE() << Toplevel << " run " << Run << ": " << V;
    return Observer.Violations.empty();
  };

  if (!DirectArgs.empty()) {
    for (unsigned Run = 0; Run < DirectArgs.size(); ++Run) {
      Interp VM(*Program.Module, Options.Interp);
      AddressTraceObserver Observer(VM, *Program.Module, PT);
      VM.setHooks(&Observer);
      for (unsigned Call = 0; Call < Depth; ++Call)
        VM.callFunction(Toplevel, DirectArgs[Run]);
      Samples += Observer.Samples;
      if (!Flush(Observer, Run))
        return; // one run's spew is enough
    }
  } else {
    Rng R(Seed);
    InputManager Inputs(R);
    for (unsigned Run = 0; Run < Runs; ++Run) {
      Inputs.beginRun();
      Interp VM(*Program.Module, Options.Interp);
      AddressTraceObserver Observer(VM, *Program.Module, PT);
      VM.setHooks(&Observer);
      TestDriver Driver(Interface, Program.GlobalIndexOf, Inputs, VM,
                        /*Hooks=*/nullptr, Options.Driver);
      executeDartRun(Options, *TU, Driver, VM);
      Samples += Observer.Samples;
      if (!Flush(Observer, Run))
        return;
      Inputs.reset();
    }
  }
  EXPECT_GT(Samples, 0u) << Toplevel << ": trace observed no memory ops";
}

} // namespace

TEST(PointsToProperty, AcControllerTraceIsCovered) {
  // Every message pair of the interesting window, so all four guarded
  // global stores (and the depth-2 abort path's prefix) execute.
  std::vector<std::vector<int64_t>> Args;
  for (int64_t M : {-1, 0, 1, 2, 3, 4})
    Args.push_back({M});
  checkWorkload(workloads::acControllerSource(), "ac_controller",
                /*Depth=*/2, /*Runs=*/0, /*Seed=*/2005, Args);
}

TEST(PointsToProperty, NeedhamSchroederTraceIsCovered) {
  checkWorkload(workloads::needhamSchroederSource({}), "ns_step",
                /*Depth=*/2, /*Runs=*/50, /*Seed=*/7);
}

TEST(PointsToProperty, MiniSipTracesAreCovered) {
  // Functions that store through pointer parameters and heap objects —
  // the interesting alias traffic for the over-approximation check.
  for (const char *Fn : {"sip_strcpy", "sip_receive", "sip_strdup"})
    checkWorkload(workloads::miniSipSource(), Fn, /*Depth=*/1, /*Runs=*/40,
                  /*Seed=*/11);
}
