//===- slice_diff_test.cpp - Sliced-query search equivalence --------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Query slicing (SolverOptions::SliceQueries) is a pure solver-traffic
// lever: with slicing on and off, a DART session over the same program and
// seed must produce the *same* bug sets, coverage bitmaps, run counts, and
// solver schedules — only the number of conjuncts per query changes. Out-
// of-slice inputs keep their previous concrete values (solution
// completion), which is exactly the value the hint-preferring unsliced
// solve would have returned for them, so even the model values agree.
// This suite pins that down over the paper's example programs, the
// examples/minic sources, and the §4 workloads, at --jobs 1 (byte-exact,
// including every model value and run number) and --jobs 4
// (content-identical).
//
// The soundness property is additionally checked from below: a mini
// concolic loop solves sliced negations directly through
// solvePathConstraint, completes each model with the previous inputs, and
// replays it through the interpreter asserting the flipped branch actually
// takes the predicted direction (ConcolicRun's forcing check).
//
// Parallel comparisons use scenarios whose exploration *completes* within
// the run budget, for the same schedule-dependence reason documented in
// snapshot_diff_test.cpp; truncated deep searches compare at --jobs 1.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "concolic/Concolic.h"
#include "concolic/PathSearch.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace dart;
using namespace dart::test;

namespace {

struct Scenario {
  std::string Name;
  std::string Source;
  std::string Toplevel;
  unsigned Depth;
  uint64_t Seed;
  unsigned MaxRuns;
};

std::string readExample(const std::string &FileName) {
  std::ifstream In(std::string(DART_MINIC_DIR) + "/" + FileName);
  EXPECT_TRUE(In.good()) << "cannot read example " << FileName;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

const char *introSource() {
  return R"(
    int f(int x) { return 2 * x; }
    int h(int x, int y) {
      if (x != y)
        if (f(x) == x + 10)
          abort();
      return 0;
    }
  )";
}

/// §4 workloads and intro examples whose exploration completes within the
/// budget: safe at any job count.
std::vector<Scenario> completingScenarios() {
  return {
      {"intro", introSource(), "h", 1, 42, 200},
      {"ac_controller", workloads::acControllerSource(), "ac_controller", 2,
       2005, 2000},
      {"ac_controller_deep", workloads::acControllerSource(),
       "ac_controller", 4, 2005, 2000},
      {"minisip_get_host", workloads::miniSipSource(), "sip_uri_get_host", 1,
       11, 300},
      {"minisip_receive", workloads::miniSipSource(), "sip_receive", 1, 11,
       300},
  };
}

/// Deep, budget-truncated searches: --jobs 1 only (see file comment).
std::vector<Scenario> truncatedDeepScenarios() {
  return {
      {"ac_controller_d8", workloads::acControllerSource(), "ac_controller",
       8, 2005, 1500},
      {"minisip_receive_d32", workloads::miniSipSource(), "sip_receive", 32,
       11, 400},
  };
}

/// The shipped examples/minic sources (read from the source tree); these
/// complete, so they run at both job counts.
std::vector<Scenario> minicScenarios() {
  return {
      {"filters_route", readExample("filters.c"), "route", 4, 2005, 1000},
      {"lint_clean_clamp", readExample("lint_clean.c"), "clamp", 4, 7, 500},
      {"lint_seeded", readExample("lint_seeded.c"), "seeded", 1, 3, 200},
  };
}

DartReport runSlice(const Scenario &S, bool Slice, unsigned Jobs) {
  auto D = compile(S.Source);
  DartOptions Opts;
  Opts.ToplevelName = S.Toplevel;
  Opts.Depth = S.Depth;
  Opts.Seed = S.Seed;
  Opts.MaxRuns = S.MaxRuns;
  Opts.Jobs = Jobs;
  Opts.StopAtFirstError = false; // collect every distinct error path
  Opts.Solver.SliceQueries = Slice;
  return D->run(Opts);
}

/// Every bug, with its exact inputs. Run numbers are only meaningful at
/// --jobs 1 (the parallel numbering follows the worker schedule).
std::vector<std::string> bugList(const DartReport &R, bool WithRunNumbers) {
  std::vector<std::string> Out;
  for (const BugInfo &B : R.Bugs) {
    if (WithRunNumbers) {
      Out.push_back(B.toString());
      continue;
    }
    std::string Sig = B.Error.toString();
    for (const auto &[InputName, Value] : B.Inputs)
      Sig += " " + InputName + "=" + std::to_string(Value);
    Out.push_back(std::move(Sig));
  }
  return Out;
}

void expectIdentical(const DartReport &On, const DartReport &Off,
                     const std::string &Name, bool WithRunNumbers) {
  EXPECT_EQ(On.Runs, Off.Runs) << Name;
  EXPECT_EQ(On.Restarts, Off.Restarts) << Name;
  EXPECT_EQ(On.ForcingMismatches, Off.ForcingMismatches) << Name;
  EXPECT_EQ(On.BugFound, Off.BugFound) << Name;
  EXPECT_EQ(bugList(On, WithRunNumbers), bugList(Off, WithRunNumbers))
      << Name;
  EXPECT_EQ(On.CompleteExploration, Off.CompleteExploration) << Name;
  EXPECT_EQ(On.BranchDirectionsCovered, Off.BranchDirectionsCovered) << Name;
  EXPECT_EQ(On.Coverage, Off.Coverage) << Name << ": coverage bitmap";
  EXPECT_EQ(On.SolverCalls, Off.SolverCalls) << Name;
  EXPECT_EQ(On.TotalSteps, Off.TotalSteps) << Name;
}

} // namespace

TEST(SliceDiff, SequentialByteIdenticalAcrossModes) {
  uint64_t TotalSliced = 0;
  uint64_t ElidedPreds = 0;
  std::vector<Scenario> All = completingScenarios();
  for (Scenario &S : truncatedDeepScenarios())
    All.push_back(std::move(S));
  for (const Scenario &S : All) {
    DartReport On = runSlice(S, /*Slice=*/true, /*Jobs=*/1);
    DartReport Off = runSlice(S, /*Slice=*/false, /*Jobs=*/1);
    expectIdentical(On, Off, S.Name, /*WithRunNumbers=*/true);
    // The off baseline must truly send full prefixes.
    EXPECT_EQ(Off.Solver.SlicedQueries, 0u) << S.Name;
    EXPECT_EQ(Off.Solver.SliceFullPreds, Off.Solver.SliceSentPreds) << S.Name;
    TotalSliced += On.Solver.SlicedQueries;
    ElidedPreds += On.Solver.SliceFullPreds - On.Solver.SliceSentPreds;
  }
  EXPECT_GT(TotalSliced, 0u) << "slicing was never exercised";
  EXPECT_GT(ElidedPreds, 0u) << "slicing must elide predicate work";
}

TEST(SliceDiff, ParallelIdenticalAcrossModes) {
  for (const Scenario &S : completingScenarios()) {
    DartReport On = runSlice(S, /*Slice=*/true, /*Jobs=*/4);
    DartReport Off = runSlice(S, /*Slice=*/false, /*Jobs=*/4);
    expectIdentical(On, Off, S.Name, /*WithRunNumbers=*/false);
  }
}

TEST(SliceDiff, MinicExamplesIdenticalAtBothJobCounts) {
  for (const Scenario &S : minicScenarios()) {
    DartReport On1 = runSlice(S, /*Slice=*/true, /*Jobs=*/1);
    DartReport Off1 = runSlice(S, /*Slice=*/false, /*Jobs=*/1);
    expectIdentical(On1, Off1, S.Name + "/j1", /*WithRunNumbers=*/true);
    DartReport On4 = runSlice(S, /*Slice=*/true, /*Jobs=*/4);
    DartReport Off4 = runSlice(S, /*Slice=*/false, /*Jobs=*/4);
    expectIdentical(On4, Off4, S.Name + "/j4", /*WithRunNumbers=*/false);
  }
}

TEST(SliceDiff, DeepSearchHalvesMedianQuerySize) {
  // The headline claim (EXPERIMENTS.md): on the depth-8 protocol workload
  // the median query shrinks by at least 2x — each call's message is a
  // fresh scalar input, so a deep prefix is mostly conjuncts about *other*
  // calls' messages than the one being flipped. (The SIP parser couples
  // more: its global parser state carries earlier calls' symbolic values
  // into later calls' conditions, so its sound slices stay larger — the
  // bench reports its measured ratio instead of gating on it.)
  Scenario S{"ac_controller_d8", workloads::acControllerSource(),
             "ac_controller", 8, 2005, 1500};
  DartReport On = runSlice(S, /*Slice=*/true, /*Jobs=*/1);
  DartReport Off = runSlice(S, /*Slice=*/false, /*Jobs=*/1);
  expectIdentical(On, Off, S.Name, /*WithRunNumbers=*/true);
  double FullMedian = SolverStats::histogramMedian(On.Solver.QuerySizeFull);
  double SentMedian = SolverStats::histogramMedian(On.Solver.QuerySizeSent);
  EXPECT_GT(FullMedian, 0.0);
  EXPECT_LE(2.0 * SentMedian, FullMedian)
      << "expected a >=2x median query-size reduction at depth 8";
  // Both modes see the same full-prefix sizes — slicing changes what is
  // sent, never what the path recorded.
  EXPECT_EQ(On.Solver.QuerySizeFull, Off.Solver.QuerySizeFull);
}

//===----------------------------------------------------------------------===//
// Soundness from below: sliced models, replayed
//===----------------------------------------------------------------------===//

namespace {

/// One instrumented run of \p Fn with integer args bound as inputs
/// x0..xn-1, under an optional predicted stack (the forcing check).
struct ReplayRun {
  std::unique_ptr<ConcolicRun> Hooks;
  std::unique_ptr<Interp> VM;
  PathData Path;
  bool ForcingOk = false;

  ReplayRun(const LoweredProgram &Program,
            const std::vector<InputInfo> &Inputs, PredArena &Arena,
            const std::string &Fn, const std::vector<int64_t> &Args,
            std::vector<BranchRecord> Predicted) {
    Hooks = std::make_unique<ConcolicRun>(Inputs, Arena, std::move(Predicted),
                                          ConcolicOptions{});
    VM = std::make_unique<Interp>(*Program.Module);
    VM->setHooks(Hooks.get());
    auto *ParamAddrs = VM->beginCall(Fn, Args);
    if (!ParamAddrs) {
      ADD_FAILURE() << "beginCall(" << Fn << ") failed";
      return;
    }
    for (size_t I = 0; I < Args.size(); ++I)
      Hooks->bindInput((*ParamAddrs)[I], ValType::int32(),
                       static_cast<InputId>(I));
    VM->finishCall();
    ForcingOk = Hooks->forcingOk();
    Path = Hooks->takePath();
  }
};

} // namespace

TEST(SliceSoundness, SlicedModelsFlipTheirBranchUnderReplay) {
  // Four input groups with deliberately disjoint constraints (plus one
  // cross-group conjunct), so most slices are strict subsets of their
  // prefix. A depth-first mini-DART loop: solve the sliced negation,
  // complete the model with the previous inputs (out-of-slice inputs keep
  // their values), replay, and require the flipped branch to take the
  // predicted direction — ConcolicRun's forcing check plus a direct look
  // at the new path's stack.
  const char *Source = R"(
    int maze(int a, int b, int c, int d) {
      int r = 0;
      if (a > 10) r = r + 1;
      if (b == a + 3) r = r + 2;
      if (c < 5) r = r + 4;
      if (d == c * 2) r = r + 8;
      if (a + d > 20) r = r + 16;
      if (b != 7) r = r + 32;
      return r;
    }
  )";
  DiagnosticsEngine Diags;
  auto TU = parseAndCheck(Source, Diags);
  ASSERT_NE(TU, nullptr) << Diags.toString();
  LoweredProgram Program = lowerToIR(*TU, Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.toString();

  std::vector<InputInfo> Inputs;
  for (unsigned I = 0; I < 4; ++I)
    Inputs.push_back(InputInfo{InputKind::Integer, ValType::int32(),
                               "x" + std::to_string(I)});
  auto DomainOf = [](InputId) { return VarDomain{INT32_MIN, INT32_MAX}; };

  SolverOptions SolverOpts;
  SolverOpts.SliceQueries = true;
  LinearSolver Solver(SolverOpts);
  PredArena Arena;
  Rng R(7);

  std::vector<int64_t> Args = {1, 2, 3, 4};
  ReplayRun First(Program, Inputs, Arena, "maze", Args, {});
  PathData Path = std::move(First.Path);

  unsigned Flips = 0;
  for (unsigned Iter = 0; Iter < 64; ++Iter) {
    std::map<InputId, int64_t> Hint;
    for (size_t I = 0; I < Args.size(); ++I)
      Hint[static_cast<InputId>(I)] = Args[I];
    SolveOutcome O =
        solvePathConstraint(Path, Arena, Solver, DomainOf, Hint,
                            SearchStrategy::DepthFirst, R);
    if (!O.Found)
      break;
    ++Flips;
    // Solution completion: the sliced model only covers the slice; every
    // other input keeps its previous concrete value.
    for (const auto &[Id, Value] : O.Model)
      Args[Id] = Value;
    bool WantDirection = O.NextStack[O.FlippedIndex].Branch;
    ReplayRun Next(Program, Inputs, Arena, "maze", Args, O.NextStack);
    EXPECT_TRUE(Next.ForcingOk)
        << "iteration " << Iter << ": a predicted branch went the wrong way";
    ASSERT_GT(Next.Path.Stack.size(), O.FlippedIndex) << "iteration " << Iter;
    EXPECT_EQ(Next.Path.Stack[O.FlippedIndex].Branch, WantDirection)
        << "iteration " << Iter << ": flipped branch not taken as predicted";
    Path = std::move(Next.Path);
  }
  EXPECT_GT(Flips, 10u) << "the mini search never got going";
  EXPECT_GT(Solver.stats().SlicedQueries, 0u)
      << "no query was ever a strict slice — the property was vacuous";
}
