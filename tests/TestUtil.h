//===- TestUtil.h - Shared helpers for the test suite -----------*- C++ -*-===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef DART_TESTS_TESTUTIL_H
#define DART_TESTS_TESTUTIL_H

#include "core/Dart.h"
#include "ir/Lowering.h"
#include "sema/Sema.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace dart::test {

/// Parses and checks a MiniC program, failing the test on diagnostics.
inline std::unique_ptr<TranslationUnit> check(std::string_view Source) {
  DiagnosticsEngine Diags;
  auto TU = parseAndCheck(Source, Diags);
  EXPECT_TRUE(TU != nullptr) << Diags.toString();
  return TU;
}

/// Expects compilation to fail and returns the diagnostics text.
inline std::string checkFails(std::string_view Source) {
  DiagnosticsEngine Diags;
  auto TU = parseAndCheck(Source, Diags);
  EXPECT_EQ(TU, nullptr) << "expected compilation to fail";
  return Diags.toString();
}

/// Compiles all the way to IR, failing the test on diagnostics.
inline std::unique_ptr<Dart> compile(std::string_view Source) {
  std::string Errors;
  auto D = Dart::fromSource(Source, &Errors);
  EXPECT_TRUE(D != nullptr) << Errors;
  return D;
}

/// Runs a full DART session with common defaults.
inline DartReport runDart(std::string_view Source,
                          const std::string &Toplevel, unsigned Depth = 1,
                          uint64_t Seed = 42, unsigned MaxRuns = 10000) {
  auto D = compile(Source);
  if (!D)
    return DartReport{};
  DartOptions Opts;
  Opts.ToplevelName = Toplevel;
  Opts.Depth = Depth;
  Opts.Seed = Seed;
  Opts.MaxRuns = MaxRuns;
  return D->run(Opts);
}

} // namespace dart::test

#endif // DART_TESTS_TESTUTIL_H
