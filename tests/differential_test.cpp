//===- differential_test.cpp - VM vs. host-semantics differential tests ----===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Property test over the whole front-end + VM pipeline: generate random
// MiniC expression functions, run them through lexer → parser → sema →
// lowering → Interp, and compare against an independent evaluator that
// implements C's int32 semantics directly on the generated expression
// tree. Any disagreement is a bug in one of the five stages.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "interp/Interp.h"
#include "ir/Lowering.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

using namespace dart;
using namespace dart::test;

namespace {

/// Wrap to int32 like the VM's canonicalize.
int32_t wrap32(int64_t V) { return static_cast<int32_t>(V); }

/// A generated expression: renders to MiniC text and evaluates with C
/// semantics (int arithmetic at 32 bits, wraparound, masked shifts).
struct GenExpr {
  enum class Kind { Const, Var, Bin, Neg, Not, Ternary } K;
  int32_t Value = 0;       // Const
  unsigned VarIndex = 0;   // Var
  char Op[3] = {0, 0, 0};  // Bin
  std::unique_ptr<GenExpr> A, B, C;

  std::string render() const {
    switch (K) {
    case Kind::Const:
      // Render INT_MIN safely (the literal 2147483648 would overflow int).
      if (Value == INT32_MIN)
        return "(-2147483647 - 1)";
      return Value < 0 ? "(" + std::to_string(Value) + ")"
                       : std::to_string(Value);
    case Kind::Var:
      return std::string(1, static_cast<char>('a' + VarIndex));
    case Kind::Bin:
      return "(" + A->render() + " " + Op + " " + B->render() + ")";
    case Kind::Neg:
      return "(-" + A->render() + ")";
    case Kind::Not:
      return "(!" + A->render() + ")";
    case Kind::Ternary:
      return "(" + A->render() + " ? " + B->render() + " : " +
             C->render() + ")";
    }
    return "0";
  }

  int32_t eval(const std::vector<int32_t> &Env) const {
    switch (K) {
    case Kind::Const:
      return Value;
    case Kind::Var:
      return Env[VarIndex];
    case Kind::Neg:
      return wrap32(-int64_t(A->eval(Env)));
    case Kind::Not:
      return A->eval(Env) == 0 ? 1 : 0;
    case Kind::Ternary:
      return A->eval(Env) != 0 ? B->eval(Env) : C->eval(Env);
    case Kind::Bin: {
      int64_t L = A->eval(Env);
      // Short-circuit operators must not evaluate the RHS eagerly (the
      // generator only emits pure expressions, but keep semantics exact).
      if (Op[0] == '&' && Op[1] == '&')
        return (L != 0 && B->eval(Env) != 0) ? 1 : 0;
      if (Op[0] == '|' && Op[1] == '|')
        return (L != 0 || B->eval(Env) != 0) ? 1 : 0;
      int64_t R = B->eval(Env);
      std::string O = Op;
      if (O == "+")
        return wrap32(L + R);
      if (O == "-")
        return wrap32(L - R);
      if (O == "*")
        return wrap32(L * R);
      if (O == "&")
        return wrap32(L & R);
      if (O == "|")
        return wrap32(L | R);
      if (O == "^")
        return wrap32(L ^ R);
      if (O == "<<")
        return wrap32(static_cast<int64_t>(static_cast<uint64_t>(L)
                                           << (R & 31)));
      if (O == ">>")
        return wrap32(static_cast<int32_t>(L) >> (R & 31));
      if (O == "==")
        return L == R;
      if (O == "!=")
        return L != R;
      if (O == "<")
        return L < R;
      if (O == "<=")
        return L <= R;
      if (O == ">")
        return L > R;
      if (O == ">=")
        return L >= R;
      ADD_FAILURE() << "unknown operator " << O;
      return 0;
    }
    }
    return 0;
  }
};

std::unique_ptr<GenExpr> genExpr(Rng &R, unsigned Depth, unsigned NumVars) {
  auto E = std::make_unique<GenExpr>();
  unsigned Pick = static_cast<unsigned>(R.nextBelow(Depth == 0 ? 2 : 10));
  if (Pick == 0) {
    E->K = GenExpr::Kind::Const;
    // Mix small and extreme constants to hit wraparound paths.
    switch (R.nextBelow(4)) {
    case 0:
      E->Value = static_cast<int32_t>(R.nextBits(4));
      break;
    case 1:
      E->Value = static_cast<int32_t>(R.nextBits(32));
      break;
    case 2:
      E->Value = INT32_MAX;
      break;
    default:
      E->Value = INT32_MIN;
      break;
    }
    return E;
  }
  if (Pick == 1) {
    E->K = GenExpr::Kind::Var;
    E->VarIndex = static_cast<unsigned>(R.nextBelow(NumVars));
    return E;
  }
  if (Pick == 2) {
    E->K = GenExpr::Kind::Neg;
    E->A = genExpr(R, Depth - 1, NumVars);
    return E;
  }
  if (Pick == 3) {
    E->K = GenExpr::Kind::Not;
    E->A = genExpr(R, Depth - 1, NumVars);
    return E;
  }
  if (Pick == 4) {
    E->K = GenExpr::Kind::Ternary;
    E->A = genExpr(R, Depth - 1, NumVars);
    E->B = genExpr(R, Depth - 1, NumVars);
    E->C = genExpr(R, Depth - 1, NumVars);
    return E;
  }
  static const char *Ops[] = {"+",  "-",  "*",  "&",  "|",  "^", "<<",
                              ">>", "==", "!=", "<",  "<=", ">", ">=",
                              "&&", "||"};
  E->K = GenExpr::Kind::Bin;
  const char *Op = Ops[R.nextBelow(sizeof(Ops) / sizeof(Ops[0]))];
  E->Op[0] = Op[0];
  E->Op[1] = Op[1] ? Op[1] : 0;
  E->A = genExpr(R, Depth - 1, NumVars);
  E->B = genExpr(R, Depth - 1, NumVars);
  return E;
}

} // namespace

TEST(Differential, RandomExpressionsMatchHostSemantics) {
  Rng R(20050612); // the paper's publication date
  const unsigned NumVars = 3;
  unsigned Disagreements = 0;
  for (int Trial = 0; Trial < 150; ++Trial) {
    auto E = genExpr(R, 4, NumVars);
    std::string Source =
        "int f(int a, int b, int c) { return " + E->render() + "; }";

    DiagnosticsEngine Diags;
    auto TU = parseAndCheck(Source, Diags);
    ASSERT_NE(TU, nullptr) << Source << "\n" << Diags.toString();
    LoweredProgram P = lowerToIR(*TU, Diags);
    ASSERT_FALSE(Diags.hasErrors()) << Source;

    for (int Input = 0; Input < 5; ++Input) {
      std::vector<int32_t> Env;
      for (unsigned V = 0; V < NumVars; ++V)
        Env.push_back(static_cast<int32_t>(R.nextBits(32)));
      Interp VM(*P.Module);
      RunResult Run = VM.callFunction(
          "f", {Env[0], Env[1], Env[2]});
      ASSERT_EQ(Run.Status, RunStatus::Halted)
          << Source << " with a=" << Env[0] << " b=" << Env[1]
          << " c=" << Env[2] << ": " << Run.Error.toString();
      int32_t Expected = E->eval(Env);
      if (Run.ReturnValue != Expected) {
        ++Disagreements;
        ADD_FAILURE() << "semantics mismatch for\n  " << Source
                      << "\n  a=" << Env[0] << " b=" << Env[1]
                      << " c=" << Env[2] << "\n  VM=" << Run.ReturnValue
                      << " host=" << Expected;
      }
    }
  }
  EXPECT_EQ(Disagreements, 0u);
}

TEST(Differential, RandomStatementProgramsTerminateConsistently) {
  // Random accumulator loops: compare the VM against a host-side
  // interpretation of the same (simple, bounded) program shape.
  Rng R(42);
  for (int Trial = 0; Trial < 60; ++Trial) {
    int32_t Init = static_cast<int32_t>(R.nextBits(16));
    int32_t Step = static_cast<int32_t>(R.nextBits(8));
    unsigned Count = 1 + static_cast<unsigned>(R.nextBelow(20));
    int32_t Mask = static_cast<int32_t>(R.nextBits(12)) | 1;

    std::string Source = "int f(void) { int s = " + std::to_string(Init) +
                         "; for (int i = 0; i < " + std::to_string(Count) +
                         "; i++) { s = s * 3 + " + std::to_string(Step) +
                         "; if ((s & " + std::to_string(Mask) +
                         ") == 0) s = s + 1; } return s; }";

    int64_t S = Init;
    for (unsigned I = 0; I < Count; ++I) {
      S = wrap32(S * 3 + Step);
      if ((wrap32(S) & Mask) == 0)
        S = wrap32(S + 1);
    }

    DiagnosticsEngine Diags;
    auto TU = parseAndCheck(Source, Diags);
    ASSERT_NE(TU, nullptr) << Source;
    LoweredProgram P = lowerToIR(*TU, Diags);
    Interp VM(*P.Module);
    RunResult Run = VM.callFunction("f", {});
    ASSERT_EQ(Run.Status, RunStatus::Halted) << Source;
    EXPECT_EQ(Run.ReturnValue, wrap32(S)) << Source;
  }
}

TEST(Differential, ConcolicConstraintsAgreeWithConcreteOutcomes) {
  // Property over the symbolic layer: on random linear conditions over
  // `char` inputs (small enough that 32-bit arithmetic never wraps — the
  // solver's ideal-integer theory is exact there), every directed search
  // must terminate with a completeness claim. With full 32-bit inputs the
  // products may overflow and the documented ideal-integer approximation
  // would legitimately demote completeness.
  Rng R(7);
  for (int Trial = 0; Trial < 80; ++Trial) {
    int32_t CoefA = static_cast<int32_t>(R.nextBits(6));
    int32_t CoefB = static_cast<int32_t>(R.nextBits(6));
    int32_t Bias = static_cast<int32_t>(R.nextBits(10));
    const char *Preds[] = {"==", "!=", "<", "<=", ">", ">="};
    const char *Pred = Preds[R.nextBelow(6)];

    std::string Source = "int f(char a, char b) { if (" +
                         std::to_string(CoefA) + " * a + " +
                         std::to_string(CoefB) + " * b " + Pred + " " +
                         std::to_string(Bias) + ") return 1; return 0; }";

    auto D = compile(Source);
    ASSERT_NE(D, nullptr);
    DartOptions Opts;
    Opts.ToplevelName = "f";
    Opts.Seed = static_cast<uint64_t>(Trial) + 1;
    Opts.MaxRuns = 16;
    DartReport Report = D->run(Opts);
    // Linear program, no abort: DART must terminate claiming completeness
    // and cover both directions (whenever both are feasible, which holds
    // unless the predicate is constant).
    if (CoefA == 0 && CoefB == 0)
      continue;
    EXPECT_TRUE(Report.CompleteExploration) << Source;
    EXPECT_FALSE(Report.BugFound) << Source;
  }
}
