//===- domains_test.cpp - Input-domain end-to-end tests ---------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Each MiniC input type induces a solver domain (char: [-128,127], int:
// 32-bit, unsigned: [0, 2^32), long: 64-bit). These end-to-end tests pin
// the domain plumbing from random_init through the solver: constraints
// only satisfiable inside the right domain must be solved; constraints
// outside it must make the branch unreachable.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace dart;
using namespace dart::test;

TEST(Domains, CharInputStaysInByteRange) {
  // Reachable only at the top of the char range.
  DartReport R = runDart(
      "void f(char c) { if (c == 127) abort(); }", "f");
  ASSERT_TRUE(R.BugFound);
  // Out of range: unreachable, and provably so (complete exploration).
  DartReport R2 = runDart(
      "void f(char c) { if (c > 127) abort(); }", "f");
  EXPECT_FALSE(R2.BugFound);
  EXPECT_TRUE(R2.CompleteExploration);
}

TEST(Domains, UnsignedInputReachesAboveIntMax) {
  // 3000000000 > INT_MAX: only reachable because the domain is unsigned.
  DartReport R = runDart(
      "void f(unsigned u) { if (u == 3000000000u) abort(); }", "f");
  ASSERT_TRUE(R.BugFound);
  EXPECT_LE(R.Runs, 2u);
}

TEST(Domains, UnsignedInputNeverNegative) {
  // u >= 0 always holds; the false direction is infeasible, yet the
  // search must still terminate completely.
  DartReport R = runDart(
      "int f(unsigned u) { if (u >= 0u) return 1; return 0; }", "f");
  EXPECT_FALSE(R.BugFound);
  EXPECT_TRUE(R.CompleteExploration);
}

TEST(Domains, LongInputReachesBeyondIntRange) {
  DartReport R = runDart(
      "void f(long l) { if (l == 5000000000) abort(); }", "f");
  ASSERT_TRUE(R.BugFound);
  bool Saw = false;
  for (const auto &[Name, Value] : R.Bugs[0].Inputs)
    if (Name.find(".l") != std::string::npos) {
      EXPECT_EQ(Value, 5000000000LL);
      Saw = true;
    }
  EXPECT_TRUE(Saw);
}

TEST(Domains, MixedWidthComparisonSolved) {
  // char promoted to int and compared against an int input.
  DartReport R = runDart(R"(
    void f(char c, int x) {
      if (c == x)
        if (x == 99)
          abort();
    }
  )",
                         "f", 1, 3, 100);
  ASSERT_TRUE(R.BugFound);
}

TEST(Domains, ExternStructGlobalFieldsAreInputs) {
  // An extern struct variable: every field is an independent input cell.
  DartReport R = runDart(R"(
    struct cfg { int mode; char tag; };
    extern struct cfg config;
    void f(void) {
      if (config.mode == 31415)
        if (config.tag == 'Z')
          abort();
    }
  )",
                         "f");
  ASSERT_TRUE(R.BugFound);
  EXPECT_LE(R.Runs, 4u);
}

TEST(Domains, ExternArrayGlobalElementsAreInputs) {
  DartReport R = runDart(R"(
    extern int table[4];
    void f(void) {
      if (table[0] == 7 && table[3] == -7)
        abort();
    }
  )",
                         "f");
  ASSERT_TRUE(R.BugFound);
}

TEST(Domains, UnsignedWrapComparisonHandledSoundly) {
  // (unsigned)(x) < 10 with x an int input: the symbolic layer passes the
  // cast through (ideal integers), so the solver may guess x in [0,10) —
  // always consistent — or a negative x whose unsigned view is huge, which
  // the forcing check catches. Either way no false bug and no crash.
  DartReport R = runDart(R"(
    int f(int x) {
      unsigned u = x;
      if (u < 10u) return 1;
      return 0;
    }
  )",
                         "f", 1, 9, 200);
  EXPECT_FALSE(R.BugFound);
}
