//===- jit_test.cpp - Unit tests for the baseline JIT block compiler ------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Structural tests of the native tier: which instructions compile, where
// blocks deopt back into the interpreter, how taint gates hook-safe
// stores — plus direct Interp equivalence sweeps (same results, same step
// counts, with the JIT on and off) including every StepLimit boundary.
//
// Everything is skipped when jitSupported() is false (non-x86-64 hosts,
// sanitizer builds, -DDART_JIT=OFF): there the tier is stubbed out and the
// interpreter runs alone, which the rest of the suite covers.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "interp/Interp.h"
#include "jit/Jit.h"

#include <gtest/gtest.h>

using namespace dart;
using namespace dart::test;

namespace {

#define REQUIRE_JIT()                                                          \
  do {                                                                         \
    if (!jit::jitSupported())                                                  \
      GTEST_SKIP() << "native tier unavailable in this build";                 \
  } while (0)

/// PC of the first instruction of kind \p K in \p F, or -1.
template <typename InstrT> int findInstr(const IRFunction &F) {
  for (size_t P = 0; P < F.Instrs.size(); ++P)
    if (isa<InstrT>(F.Instrs[P].get()))
      return static_cast<int>(P);
  return -1;
}

/// True when some hook-safe block covers \p PC natively (block bodies are
/// the contiguous instruction range [leader, TermPC); a CondBranch block
/// additionally retires its terminator at TermPC).
bool blockCovers(const jit::FnJit &FJ, unsigned PC) {
  for (size_t L = 0; L < FJ.Blocks.size(); ++L) {
    const jit::CompiledBlock *B = FJ.Blocks[L];
    if (!B)
      continue;
    if (L <= PC && PC < B->TermPC)
      return true;
    if (B->Kind != jit::CompiledBlock::Term::FallThrough && PC == B->TermPC)
      return true;
  }
  return false;
}

} // namespace

TEST(JitCompiler, CompilesBlocksAndUnits) {
  REQUIRE_JIT();
  auto D = compile(R"(
    int g = 0;
    void top(int x) {
      g = 1;
      g = g + 2;
      if (g << 1 == x)
        abort();
    }
  )");
  auto P = jit::JitProgram::build(D->module(), "top");
  ASSERT_NE(P, nullptr);
  EXPECT_GT(P->stats().BlocksCompiled, 0u);
  EXPECT_GT(P->stats().UnitsCompiled, 0u);
  EXPECT_GT(P->stats().CodeBytes, 0u);
  const IRFunction *F = D->module().findFunction("top");
  ASSERT_NE(F, nullptr);
  const jit::FnJit *FJ = P->fnJit(F);
  ASSERT_NE(FJ, nullptr);
  EXPECT_TRUE(FJ->HasBlocks);
  EXPECT_NE(FJ->Unit.Base, nullptr);
  // The entry block exists: `g = 1; g = g + 2` are untainted stores.
  ASSERT_NE(FJ->Blocks[0], nullptr);
  EXPECT_GE(FJ->Blocks[0]->NumInstrs, 2u);
}

TEST(JitCompiler, CallsAreDeoptPoints) {
  REQUIRE_JIT();
  auto D = compile(R"(
    int callee(int a) { return a + 1; }
    int top(int x) {
      int y = 1;
      y = y + 2;
      y = callee(y);
      if (y == 4)
        return 1;
      return 0;
    }
  )");
  auto P = jit::JitProgram::build(D->module(), "top");
  ASSERT_NE(P, nullptr);
  const IRFunction *F = D->module().findFunction("top");
  ASSERT_NE(F, nullptr);
  const jit::FnJit *FJ = P->fnJit(F);
  ASSERT_NE(FJ, nullptr);
  int CallPC = findInstr<CallInstr>(*F);
  ASSERT_GE(CallPC, 0);
  // Hook-safe tier: no block runs the call natively; the entry block
  // deopts (falls through) at or before it.
  EXPECT_FALSE(blockCovers(*FJ, unsigned(CallPC)));
  ASSERT_NE(FJ->Blocks[0], nullptr);
  EXPECT_EQ(FJ->Blocks[0]->Kind, jit::CompiledBlock::Term::FallThrough);
  EXPECT_LE(FJ->Blocks[0]->TermPC, unsigned(CallPC));
  // Hook-free tier: the unit exits at the call — no native entry there.
  ASSERT_NE(FJ->Unit.Base, nullptr);
  EXPECT_EQ(FJ->Unit.EntryOff[CallPC], -1);
}

TEST(JitCompiler, DivisionIsADeoptPoint) {
  REQUIRE_JIT();
  // Div has a fault path (divide by zero), so it never compiles.
  auto D = compile(R"(
    int g = 0;
    void top(int x) {
      g = 8;
      g = g / 2;
      g = g + 1;
    }
  )");
  auto P = jit::JitProgram::build(D->module(), "top");
  ASSERT_NE(P, nullptr);
  const IRFunction *F = D->module().findFunction("top");
  const jit::FnJit *FJ = P->fnJit(F);
  ASSERT_NE(FJ, nullptr);
  // Find the store whose value contains a Div: it must not be covered.
  int DivPC = -1;
  for (size_t PC = 0; PC < F->Instrs.size(); ++PC)
    if (const auto *S = dyn_cast<StoreInstr>(F->Instrs[PC].get()))
      if (const auto *B = dyn_cast<BinaryIRExpr>(S->value()))
        if (B->op() == IRBinOp::Div)
          DivPC = static_cast<int>(PC);
  ASSERT_GE(DivPC, 0);
  EXPECT_FALSE(blockCovers(*FJ, unsigned(DivPC)));
  if (FJ->Unit.Base) {
    EXPECT_EQ(FJ->Unit.EntryOff[DivPC], -1);
  }
}

TEST(JitCompiler, TaintGatesHookSafeStoresOnly) {
  REQUIRE_JIT();
  // `g = x` stores a toplevel input: symbolic bookkeeping must fire, so
  // the hook-safe tier deopts there — but the hook-free tier (pure random
  // runs, no symbolic shadow) executes it natively.
  auto D = compile(R"(
    int g = 0;
    void top(int x) {
      g = x;
      if (g == 5)
        abort();
    }
  )");
  auto P = jit::JitProgram::build(D->module(), "top");
  ASSERT_NE(P, nullptr);
  const IRFunction *F = D->module().findFunction("top");
  const jit::FnJit *FJ = P->fnJit(F);
  ASSERT_NE(FJ, nullptr);
  int StorePC = findInstr<StoreInstr>(*F);
  ASSERT_GE(StorePC, 0);
  EXPECT_FALSE(blockCovers(*FJ, unsigned(StorePC)));
  // The whole-function unit has no hooks to respect: the tainted store is
  // inside its native body (the function entry dispatches natively).
  ASSERT_NE(FJ->Unit.Base, nullptr);
  EXPECT_GE(FJ->Unit.EntryOff[0], 0);
}

namespace {

/// Runs `Fn(Args)` once on a fresh VM, optionally with the JIT installed
/// and optionally with (trivial) hooks forcing the hook-safe tier.
RunResult runOnce(const IRModule &M, const jit::JitProgram *P,
                  bool WithHooks, const std::string &Fn,
                  const std::vector<int64_t> &Args, uint64_t MaxSteps,
                  uint64_t *ExecutedSteps = nullptr,
                  JitRunStats *Stats = nullptr) {
  InterpOptions IO;
  IO.MaxSteps = MaxSteps;
  Interp VM(M, IO);
  ExecHooks Trivial;
  if (WithHooks)
    VM.setHooks(&Trivial);
  if (P)
    VM.setJit(P);
  RunResult R = VM.callFunction(Fn, Args);
  if (ExecutedSteps)
    *ExecutedSteps = VM.executedSteps();
  if (Stats)
    *Stats = VM.jitStats();
  return R;
}

const char *kMixedOpsSource = R"(
  int acc = 0;
  unsigned mask = 0xf0f0f0f0u;
  int top(int x, int y) {
    int i = 0;
    char c = x;
    unsigned u = y;
    while (i < 10) {
      acc = acc + (x << 1) - (y >> 2);
      u = u >> 3;
      acc = acc ^ (u & mask);
      if (acc > 1000000) acc = acc % 7;
      c = c + 1;
      i = i + 1;
    }
    if (c >= 12 && u <= 99u)
      return acc - c;
    return acc + c;
  }
)";

} // namespace

TEST(JitEquivalence, MixedArithmeticMatchesInterpreter) {
  REQUIRE_JIT();
  auto D = compile(kMixedOpsSource);
  auto P = jit::JitProgram::build(D->module(), "top");
  ASSERT_NE(P, nullptr);
  for (bool WithHooks : {false, true}) {
    for (int64_t X : {-1000, -3, 0, 7, 123456, 1 << 30}) {
      for (int64_t Y : {-77, 0, 5, 999999}) {
        uint64_t ExecJit = 0, ExecInt = 0;
        JitRunStats JS;
        RunResult Jit = runOnce(D->module(), P.get(), WithHooks, "top",
                                {X, Y}, 1 << 22, &ExecJit, &JS);
        RunResult Ref = runOnce(D->module(), nullptr, WithHooks, "top",
                                {X, Y}, 1 << 22, &ExecInt);
        SCOPED_TRACE("hooks=" + std::to_string(WithHooks) +
                     " x=" + std::to_string(X) + " y=" + std::to_string(Y));
        EXPECT_EQ(int(Jit.Status), int(Ref.Status));
        EXPECT_EQ(Jit.ReturnValue, Ref.ReturnValue);
        EXPECT_EQ(Jit.Steps, Ref.Steps);
        EXPECT_EQ(ExecJit, ExecInt);
        EXPECT_GT(JS.NativeInstrs, 0u) << "nothing ran natively";
      }
    }
  }
}

TEST(JitEquivalence, EveryStepLimitBoundaryMatches) {
  REQUIRE_JIT();
  // Sweep MaxSteps across the whole run: at every budget the JIT must
  // error (or halt) at exactly the same instruction with the same step
  // count — native fragments may only retire instructions the interpreter
  // would also have retired.
  auto D = compile(kMixedOpsSource);
  auto P = jit::JitProgram::build(D->module(), "top");
  ASSERT_NE(P, nullptr);
  RunResult Full =
      runOnce(D->module(), nullptr, false, "top", {7, -77}, 1 << 22);
  ASSERT_EQ(Full.Status, RunStatus::Halted);
  for (bool WithHooks : {false, true}) {
    for (uint64_t Limit = 1; Limit <= Full.Steps + 2; ++Limit) {
      RunResult Jit = runOnce(D->module(), P.get(), WithHooks, "top",
                              {7, -77}, Limit);
      RunResult Ref =
          runOnce(D->module(), nullptr, WithHooks, "top", {7, -77}, Limit);
      SCOPED_TRACE("hooks=" + std::to_string(WithHooks) +
                   " limit=" + std::to_string(Limit));
      ASSERT_EQ(int(Jit.Status), int(Ref.Status));
      if (Ref.Status == RunStatus::Errored) {
        EXPECT_EQ(int(Jit.Error.Kind), int(Ref.Error.Kind));
        EXPECT_EQ(Jit.Error.Loc.Line, Ref.Error.Loc.Line);
        EXPECT_EQ(Jit.Error.Loc.Column, Ref.Error.Loc.Column);
      } else {
        EXPECT_EQ(Jit.ReturnValue, Ref.ReturnValue);
      }
      EXPECT_EQ(Jit.Steps, Ref.Steps);
    }
  }
}

TEST(JitEquivalence, GlobalStateMatchesAcrossCalls) {
  REQUIRE_JIT();
  // Depth > 1 semantics: memory persists across toplevel calls within one
  // VM; the native tier must leave byte-identical globals behind.
  auto D = compile(kMixedOpsSource);
  auto P = jit::JitProgram::build(D->module(), "top");
  ASSERT_NE(P, nullptr);
  InterpOptions IO;
  Interp VmJit(D->module(), IO), VmRef(D->module(), IO);
  VmJit.setJit(P.get());
  for (int Call = 0; Call < 5; ++Call) {
    RunResult A = VmJit.callFunction("top", {Call * 17 - 20, Call});
    RunResult B = VmRef.callFunction("top", {Call * 17 - 20, Call});
    ASSERT_EQ(int(A.Status), int(B.Status)) << Call;
    EXPECT_EQ(A.ReturnValue, B.ReturnValue) << Call;
  }
  uint64_t AccJit = 0, AccRef = 0;
  ASSERT_EQ(VmJit.memory().load(VmJit.globalAddr(0), 4, AccJit),
            MemFault::None);
  ASSERT_EQ(VmRef.memory().load(VmRef.globalAddr(0), 4, AccRef),
            MemFault::None);
  EXPECT_EQ(AccJit, AccRef);
}

TEST(JitProgramLifecycle, UnsupportedOrEmptyModulesReturnNull) {
  // Build on a module with nothing compilable: no abort, just null or an
  // image with zero native entries; with the JIT unsupported, always null.
  auto D = compile("int top(int x) { return x; }");
  auto P = jit::JitProgram::build(D->module(), "top");
  if (!jit::jitSupported()) {
    EXPECT_EQ(P, nullptr);
    return;
  }
  // `return x` lowers to a Ret — nothing to compile natively is a legal
  // outcome; if an image was produced it must carry valid stats.
  if (P) {
    EXPECT_GT(P->stats().CodeBytes, 0u);
  }
}
