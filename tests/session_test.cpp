//===- session_test.cpp - PredArena and SolverSession unit tests -----------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The incremental constraint pipeline's two new pieces in isolation:
//
//  - PredArena: structural equality implies id equality, ids are stable
//    across arenas fed equal predicate sequences (the property the solver
//    caches and prefix dedup rely on), negation links round-trip, and
//    normal forms are computed once at intern time.
//
//  - SolverSession: push/pop probes return the same verdict and model as
//    the batch LinearSolver over the equivalent constraint vector (the
//    equivalence contract), including multivariate delegation, and Unsat
//    probes are memoized in the fingerprint-keyed session cache.
//
//===----------------------------------------------------------------------===//

#include "concolic/PathSearch.h"
#include "solver/SolverSession.h"
#include "support/Rng.h"
#include "symbolic/PredArena.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

using namespace dart;

namespace {

SymPred uni(CmpPred P, InputId Id, int64_t Coeff, int64_t Const) {
  return SymPred(P, *LinearExpr::variable(Id).scale(Coeff)->add(
                        LinearExpr(Const)));
}

SymPred multi(CmpPred P, InputId A, InputId B, int64_t Const) {
  return SymPred(P, *LinearExpr::variable(A)
                         .add(LinearExpr::variable(B))
                         ->add(LinearExpr(Const)));
}

std::function<VarDomain(InputId)> intDomains() {
  return [](InputId) { return VarDomain{INT32_MIN, INT32_MAX}; };
}

} // namespace

//===----------------------------------------------------------------------===//
// PredArena
//===----------------------------------------------------------------------===//

TEST(PredArena, StructuralEqualitySharesOneId) {
  PredArena A;
  // Built independently, structurally equal.
  PredId I1 = A.intern(uni(CmpPred::Lt, 0, 1, -10));
  PredId I2 = A.intern(uni(CmpPred::Lt, 0, 1, -10));
  EXPECT_NE(I1, kNoPred);
  EXPECT_EQ(I1, I2);

  // Any structural difference separates the ids.
  EXPECT_NE(A.intern(uni(CmpPred::Le, 0, 1, -10)), I1) << "predicate kind";
  EXPECT_NE(A.intern(uni(CmpPred::Lt, 1, 1, -10)), I1) << "variable";
  EXPECT_NE(A.intern(uni(CmpPred::Lt, 0, 2, -10)), I1) << "coefficient";
  EXPECT_NE(A.intern(uni(CmpPred::Lt, 0, 1, -11)), I1) << "constant";

  PredArenaStats S = A.stats();
  EXPECT_EQ(S.Size, 5u);
  EXPECT_EQ(S.Interns, 6u);
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_GT(S.hitRate(), 0.0);
}

TEST(PredArena, IdsStableAcrossArenasWithEqualPrefixes) {
  // compare_and_update_stack guarantees equal path prefixes emit equal
  // predicate sequences; the arena must then assign equal id sequences, or
  // fingerprint-keyed caching across restarts would silently stop hitting.
  std::vector<SymPred> Prefix;
  for (int I = 0; I < 32; ++I)
    Prefix.push_back(uni(I % 2 ? CmpPred::Le : CmpPred::Ne, InputId(I % 5),
                         1 + I % 3, -I));

  PredArena A, B;
  std::vector<PredId> IdsA, IdsB;
  for (const SymPred &P : Prefix)
    IdsA.push_back(A.intern(P));
  for (const SymPred &P : Prefix)
    IdsB.push_back(B.intern(P));
  EXPECT_EQ(IdsA, IdsB);

  // Re-interning the same prefix in the same arena is pure hits.
  uint64_t HitsBefore = A.stats().Hits;
  for (size_t I = 0; I < Prefix.size(); ++I)
    EXPECT_EQ(A.intern(Prefix[I]), IdsA[I]);
  EXPECT_EQ(A.stats().Hits, HitsBefore + Prefix.size());
}

TEST(PredArena, NegatedIdRoundTripsAndCaches) {
  PredArena A;
  PredId Id = A.intern(uni(CmpPred::Lt, 0, 1, -10));
  PredId Neg = A.negatedId(Id);
  EXPECT_NE(Neg, Id);
  EXPECT_EQ(A.pred(Neg).Pred, CmpPred::Ge);
  EXPECT_EQ(A.negatedId(Neg), Id) << "negation links are reverse-seeded";
  EXPECT_EQ(A.negatedId(Id), Neg) << "second lookup hits the cached link";
  // The negation is a regular interned predicate: structural interning of
  // the same negated form resolves to the same id.
  EXPECT_EQ(A.intern(A.pred(Id).negated()), Neg);
}

TEST(PredArena, NormalFormsComputedAtInternTime) {
  PredArena A;
  PredId U = A.intern(uni(CmpPred::Lt, 3, 2, -10)); // 2*x3 - 10 < 0
  ASSERT_NE(A.norm(U), nullptr);
  EXPECT_EQ(A.norm(U)->R, NormRel::LE) << "Lt normalizes to L+1 <= 0";
  EXPECT_FALSE(A.multivariate(U));

  PredId M = A.intern(multi(CmpPred::Le, 0, 1, -4));
  ASSERT_NE(A.norm(M), nullptr);
  EXPECT_TRUE(A.multivariate(M));
}

//===----------------------------------------------------------------------===//
// SolverSession
//===----------------------------------------------------------------------===//

TEST(SolverSession, PushPopRestoresFingerprint) {
  PredArena A;
  LinearSolver Solver;
  auto Domains = intDomains();
  SolverSession S(Solver, A, Domains);
  uint64_t Lo0 = S.fingerprintLo(), Hi0 = S.fingerprintHi();

  S.push(A.intern(uni(CmpPred::Le, 0, 1, -100)));
  uint64_t Lo1 = S.fingerprintLo(), Hi1 = S.fingerprintHi();
  EXPECT_TRUE(Lo1 != Lo0 || Hi1 != Hi0);

  S.push(A.intern(uni(CmpPred::Ne, 0, 1, -5)));
  EXPECT_EQ(S.depth(), 2u);
  S.pop();
  EXPECT_EQ(S.fingerprintLo(), Lo1);
  EXPECT_EQ(S.fingerprintHi(), Hi1);
  S.pop();
  EXPECT_EQ(S.fingerprintLo(), Lo0);
  EXPECT_EQ(S.fingerprintHi(), Hi0);
  EXPECT_EQ(S.depth(), 0u);
}

TEST(SolverSession, FingerprintDependsOnDomains) {
  // The same predicate id pushed under different domains must fingerprint
  // differently: the cached Unsat verdict [x <= -1, x in [0,10]] must not
  // answer the satisfiable [x <= -1, x in [-10,10]].
  PredArena A;
  PredId Id = A.intern(uni(CmpPred::Le, 0, 1, 1)); // x + 1 <= 0
  LinearSolver Solver;
  auto Narrow = [](InputId) { return VarDomain{0, 10}; };
  std::function<VarDomain(InputId)> NarrowFn = Narrow;
  auto Wide = [](InputId) { return VarDomain{-10, 10}; };
  std::function<VarDomain(InputId)> WideFn = Wide;

  SolverSession S1(Solver, A, NarrowFn);
  SolverSession S2(Solver, A, WideFn);
  S1.push(Id);
  S2.push(Id);
  EXPECT_TRUE(S1.fingerprintLo() != S2.fingerprintLo() ||
              S1.fingerprintHi() != S2.fingerprintHi());

  std::map<InputId, int64_t> M;
  EXPECT_EQ(S1.solve(M), SolveStatus::Unsat);
  EXPECT_EQ(S2.solve(M), SolveStatus::Sat);
  EXPECT_LE(M[0], -1);
}

TEST(SolverSession, MatchesBatchOnRandomSystems) {
  // The equivalence contract, probed: random conjunctions of univariate
  // predicates (plus occasional multivariate ones that force delegation),
  // solved both ways. Verdicts must match always; models must match
  // exactly, because the engines' run counts depend on the model values.
  Rng R(2026);
  auto Domains = intDomains();
  for (int Trial = 0; Trial < 200; ++Trial) {
    PredArena A;
    LinearSolver SessionSolver, BatchSolver;
    SolverSession S(SessionSolver, A, Domains);
    std::map<InputId, int64_t> Hint;
    for (InputId V = 0; V < 3; ++V)
      if (R.nextBelow(2))
        Hint[V] = int64_t(R.nextBelow(200)) - 100;
    S.setHint(&Hint);

    std::vector<SymPred> System;
    unsigned Len = 1 + unsigned(R.nextBelow(6));
    for (unsigned I = 0; I < Len; ++I) {
      InputId V = InputId(R.nextBelow(3));
      int64_t Coeff = int64_t(R.nextBelow(5)) - 2;
      if (!Coeff)
        Coeff = 1;
      int64_t K = int64_t(R.nextBelow(40)) - 20;
      CmpPred P = static_cast<CmpPred>(R.nextBelow(6));
      SymPred Pred = R.nextBelow(8) == 0
                         ? multi(P, V, InputId((V + 1) % 3), K)
                         : uni(P, V, Coeff, K);
      System.push_back(Pred);
      S.push(A.intern(Pred));
    }

    std::map<InputId, int64_t> SessionModel, BatchModel;
    SolveStatus SessionV = S.solve(SessionModel);
    SolveStatus BatchV =
        BatchSolver.solve(System, Domains, Hint, BatchModel);
    ASSERT_EQ(SessionV, BatchV) << "trial " << Trial;
    if (SessionV == SolveStatus::Sat) {
      ASSERT_EQ(SessionModel, BatchModel) << "trial " << Trial;
    }

    // Pop a suffix and re-check: undo must restore the exact state.
    unsigned Pops = unsigned(R.nextBelow(Len + 1));
    for (unsigned I = 0; I < Pops; ++I)
      S.pop();
    System.resize(Len - Pops);
    SessionModel.clear();
    BatchModel.clear();
    SessionV = S.solve(SessionModel);
    BatchV = BatchSolver.solve(System, Domains, Hint, BatchModel);
    ASSERT_EQ(SessionV, BatchV) << "trial " << Trial << " after pops";
    if (SessionV == SolveStatus::Sat) {
      ASSERT_EQ(SessionModel, BatchModel) << "trial " << Trial
                                          << " after pops";
    }
  }
}

TEST(SolverSession, UnsatProbesHitTheSessionCache) {
  PredArena A;
  LinearSolver Solver;
  auto Domains = intDomains();
  SolverSession S(Solver, A, Domains);
  PredId Low = A.intern(uni(CmpPred::Le, 0, 1, -2));  // x <= 2
  PredId High = A.intern(uni(CmpPred::Ge, 0, 1, -10)); // x >= 10

  std::map<InputId, int64_t> M;
  S.push(Low);
  S.push(High);
  EXPECT_EQ(S.solve(M), SolveStatus::Unsat);
  EXPECT_EQ(Solver.stats().SessionCacheMisses, 1u);
  EXPECT_EQ(Solver.stats().SessionCacheHits, 0u);
  S.pop();

  // The same doomed probe again: fingerprints match, the verdict replays.
  S.push(High);
  EXPECT_EQ(S.solve(M), SolveStatus::Unsat);
  EXPECT_EQ(Solver.stats().SessionCacheHits, 1u);
  EXPECT_EQ(Solver.stats().SessionCacheMisses, 1u);
}

TEST(SolverSession, HintSeededOncePerCandidateBatch) {
  // Satellite regression: solveCandidates used to rebuild the hint
  // assignment once per candidate; it is now hoisted and seeded exactly
  // once per batch, however many candidates are probed.
  PredArena A;
  LinearSolver Solver;
  Rng R(1);
  PathData P;
  for (unsigned I = 0; I < 6; ++I) {
    P.Stack.push_back({true, false, I});
    P.Constraints.push_back(A.intern(uni(CmpPred::Ne, InputId(I), 1, -7)));
  }
  std::map<InputId, int64_t> Hint{{0, 1}, {1, 2}, {2, 3}};
  CandidateSet Set =
      solveCandidates(P, A, Solver, intDomains(), Hint,
                      SearchStrategy::DepthFirst, R, 0);
  EXPECT_EQ(Set.Candidates.size(), 6u);
  EXPECT_EQ(Solver.stats().HintSeeds, 1u)
      << "one hint construction per batch, not per candidate";
  EXPECT_GE(Solver.stats().SessionSolves, 6u);
}
