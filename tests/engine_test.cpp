//===- engine_test.cpp - End-to-end DART sessions (paper behaviours) -------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/ParallelEngine.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <set>

using namespace dart;
using namespace dart::test;

namespace {

const char *PaperIntroExample = R"(
  int f(int x) { return 2 * x; }
  int h(int x, int y) {
    if (x != y)
      if (f(x) == x + 10)
        abort(); /* error */
    return 0;
  }
)";

const char *PaperSection24Example = R"(
  int f(int x, int y) {
    int z;
    z = y;
    if (x == z)
      if (y == x + 10)
        abort();
    return 0;
  }
)";

const char *PaperFoobarExample = R"(
  void foobar(int x, int y) {
    if (x * x * x > 0) {
      if (x > 0 && y == 10)
        abort(); /* reachable */
    } else {
      if (x > 0 && y == 20)
        abort(); /* unreachable */
    }
  }
)";

const char *PaperStructCastExample = R"(
  struct foo { int i; char c; };
  void bar(struct foo *a) {
    if (a->c == 0) {
      *((char *)a + sizeof(int)) = 1;
      if (a->c != 0)
        abort();
    }
  }
)";

const char *AcController = R"(
  /* initially, */
  int is_room_hot = 0;   /* room is not hot */
  int is_door_closed = 0;/* and door is open */
  int ac = 0;            /* so, ac is off */
  void ac_controller(int message) {
    if (message == 0) is_room_hot = 1;
    if (message == 1) is_room_hot = 0;
    if (message == 2) { is_door_closed = 0; ac = 0; }
    if (message == 3) { is_door_closed = 1; if (is_room_hot) ac = 1; }
    if (is_room_hot && is_door_closed && !ac)
      abort(); /* check correctness */
  }
)";

} // namespace

TEST(Engine, PaperIntroExampleFoundInTwoRuns) {
  // §2.1: "the second execution then reveals the error".
  DartReport R = runDart(PaperIntroExample, "h");
  ASSERT_TRUE(R.BugFound);
  EXPECT_EQ(R.Runs, 2u);
  EXPECT_EQ(R.Bugs[0].Error.Kind, RunErrorKind::AbortCall);
  // The failing input has x == 10 (the solver's witness).
  bool SawXEquals10 = false;
  for (const auto &[Name, Value] : R.Bugs[0].Inputs)
    if (Name.find(".x") != std::string::npos)
      SawXEquals10 = Value == 10;
  EXPECT_TRUE(SawXEquals10);
}

TEST(Engine, PaperIntroExampleRobustAcrossSeeds) {
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    DartReport R = runDart(PaperIntroExample, "h", 1, Seed);
    ASSERT_TRUE(R.BugFound) << "seed " << Seed;
    EXPECT_LE(R.Runs, 3u) << "seed " << Seed;
  }
}

TEST(Engine, PaperSection24ExampleCompleteInThreeRuns) {
  // §2.4 walks this example: run 1 (else), run 2 (then,else), then the
  // remaining path constraint (x==y && y==x+10) is UNSAT and since the
  // outer conditional is done, the directed search terminates with all
  // completeness flags set — no bug exists.
  DartReport R = runDart(PaperSection24Example, "f");
  EXPECT_FALSE(R.BugFound);
  EXPECT_TRUE(R.CompleteExploration);
  EXPECT_EQ(R.Runs, 2u) << "both feasible paths covered in two runs";
  EXPECT_TRUE(R.FinalFlags.allSet());
}

TEST(Engine, FoobarNonlinearFindsAReachableAbort) {
  // §2.5: DART treats x*x*x > 0 concretely (nonlinear) and solves the
  // linear y-constraints, reaching an abort with high probability. Note:
  // the paper calls the else-branch abort (y == 20) unreachable, which is
  // true over ideal integers; our RAM machine wraps like real C on x86,
  // where a large positive x overflows x*x*x to a non-positive value, so
  // *both* aborts are genuinely reachable (and the original DART would
  // find the same on hardware). Accept either witness.
  DartReport R = runDart(PaperFoobarExample, "foobar", 1, 7, 2000);
  ASSERT_TRUE(R.BugFound);
  EXPECT_FALSE(R.FinalFlags.AllLinear) << "x*x*x left the theory";
  int64_t X = 0, Y = 0;
  for (const auto &[Name, Value] : R.Bugs[0].Inputs) {
    if (Name.find(".x") != std::string::npos)
      X = Value;
    if (Name.find(".y") != std::string::npos)
      Y = Value;
  }
  EXPECT_GT(X, 0);
  EXPECT_TRUE(Y == 10 || Y == 20) << "Y = " << Y;
  if (Y == 20) {
    // Overflow path: x*x*x wrapped to <= 0 despite x > 0.
    int32_t Cube = static_cast<int32_t>(static_cast<int32_t>(X) *
                                        static_cast<int32_t>(X) *
                                        static_cast<int32_t>(X));
    EXPECT_LE(Cube, 0);
  }
}

TEST(Engine, FoobarSmallPositiveXFindsPaperAbort) {
  // Restrict x to a byte so x*x*x cannot overflow: only the paper's
  // abort (y == 10) is then reachable, as §2.5 describes.
  const char *Program = R"(
    void foobar(char x, int y) {
      if (x * x * x > 0) {
        if (x > 0 && y == 10)
          abort();
      } else {
        if (x > 0 && y == 20)
          abort();
      }
    }
  )";
  DartReport R = runDart(Program, "foobar", 1, 7, 2000);
  ASSERT_TRUE(R.BugFound);
  int64_t Y = 0;
  for (const auto &[Name, Value] : R.Bugs[0].Inputs)
    if (Name.find(".y") != std::string::npos)
      Y = Value;
  EXPECT_EQ(Y, 10);
}

TEST(Engine, StructCastExampleFindsAbort) {
  // §2.5: random pointer init + the linear constraint a->c == 0 reach the
  // abort; static alias analysis struggles, DART does not.
  DartReport R = runDart(PaperStructCastExample, "bar", 1, 3, 500);
  ASSERT_TRUE(R.BugFound);
  EXPECT_EQ(R.Bugs[0].Error.Kind, RunErrorKind::AbortCall);
}

TEST(Engine, AcControllerDepth1NoBugSixIterations) {
  // §4.1: "a directed search explores all execution paths up to that depth
  // in 6 iterations". No assertion violation exists at depth 1.
  DartReport R = runDart(AcController, "ac_controller", 1, 2005);
  EXPECT_FALSE(R.BugFound);
  // Shape check: single-digit number of runs, not thousands.
  EXPECT_LE(R.Runs, 12u);
  EXPECT_GE(R.Runs, 5u);
}

TEST(Engine, AcControllerDepth2FindsBug) {
  // §4.1: depth 2, bug when message1 == 3 and message2 == 0; found in 7
  // iterations in the paper.
  DartReport R = runDart(AcController, "ac_controller", 2, 2005);
  ASSERT_TRUE(R.BugFound);
  EXPECT_EQ(R.Bugs[0].Error.Kind, RunErrorKind::AbortCall);
  EXPECT_LE(R.Runs, 20u) << "directed search needs ~7 runs, not 2^64";
  // Failing inputs: first message 3, second message 0.
  ASSERT_EQ(R.Bugs[0].Inputs.size(), 2u);
  EXPECT_EQ(R.Bugs[0].Inputs[0].second, 3);
  EXPECT_EQ(R.Bugs[0].Inputs[1].second, 0);
}

TEST(Engine, AcControllerRandomSearchFindsNothing) {
  // §4.1: "a random search does not find the assertion violation after
  // hours" — the chance per run is ~2^-64.
  auto D = compile(AcController);
  DartOptions Opts;
  Opts.ToplevelName = "ac_controller";
  Opts.Depth = 2;
  Opts.Seed = 1;
  Opts.MaxRuns = 5000;
  Opts.RandomOnly = true;
  DartReport R = D->run(Opts);
  EXPECT_FALSE(R.BugFound);
  EXPECT_EQ(R.Runs, 5000u);
}

TEST(Engine, IfXEquals10RandomVsDirected) {
  // §1's motivating claim: `if (x == 10)` has probability 2^-32 per random
  // run but is reached by DART's second run.
  const char *Program = "void check(int x) { if (x == 10) abort(); }";
  DartReport Directed = runDart(Program, "check");
  ASSERT_TRUE(Directed.BugFound);
  EXPECT_LE(Directed.Runs, 2u);

  auto D = compile(Program);
  DartOptions Opts;
  Opts.ToplevelName = "check";
  Opts.RandomOnly = true;
  Opts.MaxRuns = 10000;
  Opts.Seed = 123;
  DartReport Random = D->run(Opts);
  EXPECT_FALSE(Random.BugFound) << "2^-32 per run; 10^4 runs find nothing";
}

TEST(Engine, InputFilteringCodeIsPenetrated) {
  // §4.1's discussion: directed search learns to pass input filters that
  // stop random testing cold.
  const char *Filter = R"(
    void process(int a, int b, int c) {
      if (a == 12345)
        if (b == a + 54321)
          if (c == b * 2 - 7)
            abort(); /* deep in the core logic */
    }
  )";
  DartReport R = runDart(Filter, "process", 1, 9);
  ASSERT_TRUE(R.BugFound);
  EXPECT_LE(R.Runs, 5u);
}

TEST(Engine, CrashesAreDetectedNotJustAborts) {
  const char *Crash = R"(
    int deref(int *p, int x) {
      if (x == 77)
        return *p; /* p may be NULL */
      return 0;
    }
  )";
  // The pointer is NULL with probability 1/2 per restart; x==77 comes from
  // the solver. A few restarts suffice.
  DartReport R = runDart(Crash, "deref", 1, 5, 200);
  ASSERT_TRUE(R.BugFound);
  EXPECT_EQ(R.Bugs[0].Error.Kind, RunErrorKind::MemoryFault);
  EXPECT_EQ(R.Bugs[0].Error.Fault, MemFault::NullDeref);
}

TEST(Engine, NonTerminationDetected) {
  const char *Loop = R"(
    void spin(int x) {
      if (x == 42)
        while (1) { }
    }
  )";
  auto D = compile(Loop);
  DartOptions Opts;
  Opts.ToplevelName = "spin";
  Opts.Interp.MaxSteps = 10000;
  Opts.MaxRuns = 50;
  DartReport R = D->run(Opts);
  ASSERT_TRUE(R.BugFound);
  EXPECT_EQ(R.Bugs[0].Error.Kind, RunErrorKind::StepLimit);
}

TEST(Engine, ExternVariablesAreInputs) {
  const char *Program = R"(
    extern int config;
    void f(void) {
      if (config == 99999)
        abort();
    }
  )";
  DartReport R = runDart(Program, "f");
  ASSERT_TRUE(R.BugFound);
  EXPECT_LE(R.Runs, 2u);
}

TEST(Engine, ExternalFunctionsAreInputs) {
  // §3.2: external functions return fresh nondeterministic values; DART
  // controls them like any input.
  const char *Program = R"(
    int read_sensor(void);
    void f(void) {
      int a = read_sensor();
      int b = read_sensor();
      if (a == 1234)
        if (b == a + 1)
          abort();
    }
  )";
  DartReport R = runDart(Program, "f");
  ASSERT_TRUE(R.BugFound);
  EXPECT_LE(R.Runs, 4u);
}

TEST(Engine, DepthSemanticsStateAccumulates) {
  // State persists across the depth iterations of one run (Fig. 7's loop),
  // so a 2-call protocol sequence is expressible.
  const char *Proto = R"(
    int state = 0;
    void step(int m) {
      if (state == 0 && m == 7) { state = 1; return; }
      if (state == 1 && m == 9) abort();
      state = 0;
    }
  )";
  DartReport Depth1 = runDart(Proto, "step", 1, 3, 100);
  EXPECT_FALSE(Depth1.BugFound) << "needs two messages";
  DartReport Depth2 = runDart(Proto, "step", 2, 3, 500);
  EXPECT_TRUE(Depth2.BugFound);
}

TEST(Engine, CompleteExplorationOnLinearPrograms) {
  // Theorem 1(b): terminating, fully linear program with no reachable
  // abort -> DART terminates claiming completeness.
  const char *Program = R"(
    int classify(int x) {
      if (x < 0) return -1;
      if (x == 0) return 0;
      if (x < 100) return 1;
      return 2;
    }
  )";
  DartReport R = runDart(Program, "classify");
  EXPECT_FALSE(R.BugFound);
  EXPECT_TRUE(R.CompleteExploration);
  EXPECT_EQ(R.BranchDirectionsCovered, 2u * R.BranchSitesTotal)
      << "all four paths visited";
}

TEST(Engine, CompletenessNotClaimedWhenTheoryLeaks) {
  // A nonlinear branch means DART may never claim completeness (Fig. 2's
  // outer loop would run forever); bounded by MaxRuns here.
  const char *Program = R"(
    int f(int x) {
      if (x * x == 16) return 1;
      return 0;
    }
  )";
  auto D = compile(Program);
  DartOptions Opts;
  Opts.ToplevelName = "f";
  Opts.MaxRuns = 50;
  DartReport R = D->run(Opts);
  EXPECT_FALSE(R.CompleteExploration);
  EXPECT_FALSE(R.FinalFlags.AllLinear);
  EXPECT_EQ(R.Runs, 50u) << "keeps restarting until the budget runs out";
}

TEST(Engine, StopAtFirstErrorDisabledCollectsMultipleBugs) {
  const char *Program = R"(
    void f(int x) {
      if (x == 5) abort();
      if (x == -3) abort();
    }
  )";
  auto D = compile(Program);
  DartOptions Opts;
  Opts.ToplevelName = "f";
  Opts.StopAtFirstError = false;
  Opts.MaxRuns = 50;
  DartReport R = D->run(Opts);
  EXPECT_TRUE(R.BugFound);
  EXPECT_GE(R.Bugs.size(), 2u);
}

TEST(Engine, LinkedListInputsAreGenerated) {
  // Fig. 8 generates unbounded recursive inputs; a 3-long list requires
  // three successive allocate-coins plus solver-driven values.
  const char *Program = R"(
    struct node { int v; struct node *next; };
    int sum3(struct node *l) {
      if (l != NULL && l->next != NULL && l->next->next != NULL)
        if (l->v == 1)
          if (l->next->v == 2)
            abort();
      return 0;
    }
  )";
  DartReport R = runDart(Program, "sum3", 1, 11, 2000);
  EXPECT_TRUE(R.BugFound);
}

TEST(Engine, SymbolicPointersExtensionSpeedsUpNullSearch) {
  // With the CUTE-style extension, p == NULL branches are solver-flippable
  // instead of restart-driven: exploration completes without restarts.
  const char *Program = R"(
    struct box { int v; };
    void f(struct box *p) {
      if (p != NULL)
        if (p->v == 4242)
          abort();
    }
  )";
  auto D = compile(Program);
  DartOptions Opts;
  Opts.ToplevelName = "f";
  Opts.Concolic.SymbolicPointers = true;
  Opts.MaxRuns = 50;
  Opts.Seed = 17;
  DartReport R = D->run(Opts);
  ASSERT_TRUE(R.BugFound);
  EXPECT_LE(R.Runs, 4u);
  EXPECT_EQ(R.Restarts, 0u) << "no random restarts needed";
}

TEST(Engine, AllStrategiesFlipASingleBranch) {
  // On a one-branch program every strategy behaves identically.
  const char *Program = "void f(int x) { if (x == 10) abort(); }";
  for (SearchStrategy S :
       {SearchStrategy::DepthFirst, SearchStrategy::BreadthFirst,
        SearchStrategy::RandomBranch}) {
    auto D = compile(Program);
    DartOptions Opts;
    Opts.ToplevelName = "f";
    Opts.Strategy = S;
    Opts.MaxRuns = 100;
    DartReport R = D->run(Opts);
    EXPECT_TRUE(R.BugFound) << searchStrategyName(S);
    EXPECT_LE(R.Runs, 2u) << searchStrategyName(S);
  }
}

TEST(Engine, OnlyDepthFirstMayClaimCompleteness) {
  // The stack-based search of Fig. 5 is complete only when branches are
  // negated deepest-first: BFS truncates away unexplored deeper branches.
  // The engine therefore never claims Theorem 1(b) under BFS/random.
  auto D = compile(PaperIntroExample);
  DartOptions Opts;
  Opts.ToplevelName = "h";
  Opts.Strategy = SearchStrategy::BreadthFirst;
  Opts.MaxRuns = 60;
  DartReport R = D->run(Opts);
  EXPECT_FALSE(R.CompleteExploration);
  // DFS on the same program finds the bug instead.
  Opts.Strategy = SearchStrategy::DepthFirst;
  DartReport R2 = D->run(Opts);
  EXPECT_TRUE(R2.BugFound);
}

TEST(Engine, MarkConcreteBranchesDoneReducesSolverCalls) {
  const char *Program = R"(
    int g = 1;
    int f(int x) {
      if (g == 1) { }     /* concrete branch */
      if (g != 2) { }     /* concrete branch */
      if (x == 3) return 1;
      return 0;
    }
  )";
  auto Run = [&](bool Mark) {
    auto D = compile(Program);
    DartOptions Opts;
    Opts.ToplevelName = "f";
    Opts.Concolic.MarkConcreteBranchesDone = Mark;
    // Static pruning would mark the concrete branches done in both modes,
    // hiding exactly the solver-call gap this test measures.
    Opts.StaticPrune = false;
    Opts.MaxRuns = 20;
    return D->run(Opts);
  };
  DartReport Literal = Run(false);
  DartReport Optimized = Run(true);
  EXPECT_TRUE(Literal.CompleteExploration);
  EXPECT_TRUE(Optimized.CompleteExploration);
  EXPECT_EQ(Literal.Runs, Optimized.Runs)
      << "optimization must not change the explored paths";
  EXPECT_LT(Optimized.SolverCalls, Literal.SolverCalls);
}

TEST(Engine, ReportRendering) {
  DartReport R = runDart(PaperIntroExample, "h");
  std::string Text = R.toString();
  EXPECT_NE(Text.find("bug found: yes"), std::string::npos);
  EXPECT_NE(Text.find("runs: 2"), std::string::npos);
}

TEST(Engine, RunLogRecordsEveryRun) {
  auto D = compile(PaperIntroExample);
  DartOptions Opts;
  Opts.ToplevelName = "h";
  Opts.LogRuns = true;
  Opts.MaxRuns = 10;
  DartReport R = D->run(Opts);
  ASSERT_TRUE(R.BugFound);
  ASSERT_EQ(R.RunLog.size(), R.Runs);
  EXPECT_NE(R.RunLog.front().find("run 1: halted"), std::string::npos);
  EXPECT_NE(R.RunLog.back().find("ERROR"), std::string::npos);
  EXPECT_NE(R.RunLog.back().find("h#0.x=10"), std::string::npos);
}

TEST(Engine, RunLogOffByDefault) {
  DartReport R = runDart(PaperIntroExample, "h");
  EXPECT_TRUE(R.RunLog.empty());
}

TEST(Engine, CoverageTimelineMonotoneAndDirectedDominates) {
  // §4.1's coverage claim: cumulative coverage never decreases, and the
  // directed search strictly beats random testing on filter-guarded code.
  const char *Program = R"(
    int g1 = 0; int g2 = 0;
    void f(int x) {
      if (x == 1234567) g1 = 1;
      if (x == -7654321) g2 = 1;
    }
  )";
  auto D = compile(Program);
  auto Run = [&](bool RandomOnly) {
    DartOptions Opts;
    Opts.ToplevelName = "f";
    Opts.MaxRuns = 30;
    Opts.StopAtFirstError = false;
    Opts.RandomOnly = RandomOnly;
    Opts.TrackCoverageTimeline = true;
    return D->run(Opts);
  };
  DartReport Directed = Run(false);
  DartReport Random = Run(true);
  ASSERT_EQ(Directed.CoverageTimeline.size(), Directed.Runs);
  for (size_t I = 1; I < Directed.CoverageTimeline.size(); ++I)
    EXPECT_GE(Directed.CoverageTimeline[I], Directed.CoverageTimeline[I - 1]);
  EXPECT_EQ(Directed.CoverageTimeline.back(), 4u) << "all four directions";
  EXPECT_LT(Random.CoverageTimeline.back(), 4u)
      << "random cannot hit the equality filters";
}

TEST(Engine, DeterministicGivenSeed) {
  DartReport A = runDart(AcController, "ac_controller", 2, 77);
  DartReport B = runDart(AcController, "ac_controller", 2, 77);
  EXPECT_EQ(A.Runs, B.Runs);
  ASSERT_EQ(A.Bugs.size(), B.Bugs.size());
  for (size_t I = 0; I < A.Bugs.size(); ++I)
    EXPECT_EQ(A.Bugs[I].Inputs, B.Bugs[I].Inputs);
}

//===----------------------------------------------------------------------===//
// ParallelDartEngine (frontier search, W workers)
//===----------------------------------------------------------------------===//

namespace {

DartReport runJobs(const std::string &Source, const std::string &Toplevel,
                   unsigned Depth, uint64_t Seed, unsigned MaxRuns,
                   unsigned Jobs, bool StopAtFirstError = true) {
  auto D = compile(Source);
  DartOptions Opts;
  Opts.ToplevelName = Toplevel;
  Opts.Depth = Depth;
  Opts.Seed = Seed;
  Opts.MaxRuns = MaxRuns;
  Opts.Jobs = Jobs;
  Opts.StopAtFirstError = StopAtFirstError;
  return D->run(Opts);
}

/// The schedule-independent identity of a bug: its error signature. Input
/// values may differ between worker counts (each path reaches the bug with
/// its own solver model), the set of distinct errors may not.
std::set<std::string> bugSignatures(const DartReport &R) {
  std::set<std::string> Sigs;
  for (const BugInfo &B : R.Bugs)
    Sigs.insert(B.Error.toString());
  return Sigs;
}

} // namespace

TEST(ParallelEngine, W1ByteIdenticalToSequentialEngine) {
  // Jobs == 1 must reduce *exactly* to the paper loop: same random
  // sequence, same runs, same report text, same run log.
  DiagnosticsEngine Diags;
  auto TU = parseAndCheck(workloads::acControllerSource(), Diags);
  ASSERT_TRUE(TU != nullptr) << Diags.toString();
  LoweredProgram Program = lowerToIR(*TU, Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.toString();
  DartOptions Opts;
  Opts.ToplevelName = "ac_controller";
  Opts.Depth = 2;
  Opts.Seed = 2005;
  Opts.MaxRuns = 1000;
  Opts.LogRuns = true;
  Opts.TrackCoverageTimeline = true;
  DartEngine Sequential(*TU, Program, Opts);
  DartReport SeqR = Sequential.run();
  ParallelDartEngine Parallel(*TU, Program, Opts);
  DartReport ParR = Parallel.run();
  EXPECT_EQ(SeqR.toString(), ParR.toString());
  EXPECT_EQ(SeqR.RunLog, ParR.RunLog);
  EXPECT_EQ(SeqR.CoverageTimeline, ParR.CoverageTimeline);
}

TEST(ParallelEngine, AcControllerSameBugsAndCoverageAtEveryWorkerCount) {
  // §4.1's workload, depth 2, collecting every error: the bug set, final
  // coverage, and the completeness claim must not depend on W.
  std::string Src = workloads::acControllerSource();
  DartReport Ref = runJobs(Src, "ac_controller", 2, 2005, 20000, 1,
                           /*StopAtFirstError=*/false);
  ASSERT_TRUE(Ref.BugFound);
  ASSERT_TRUE(Ref.CompleteExploration);
  for (unsigned W : {2u, 4u}) {
    DartReport R = runJobs(Src, "ac_controller", 2, 2005, 20000, W,
                           /*StopAtFirstError=*/false);
    EXPECT_EQ(bugSignatures(R), bugSignatures(Ref)) << "W=" << W;
    EXPECT_EQ(R.BranchDirectionsCovered, Ref.BranchDirectionsCovered)
        << "W=" << W;
    EXPECT_EQ(R.CompleteExploration, Ref.CompleteExploration) << "W=" << W;
    EXPECT_TRUE(R.FinalFlags.allSet()) << "W=" << W;
  }
}

TEST(ParallelEngine, NeedhamSchroederDepth1CompleteAtEveryWorkerCount) {
  // Fig. 9's workload at depth 1: no attack, exploration completes; every
  // worker count must agree on all of it, including the coverage count.
  workloads::NsConfig C;
  std::string Src = workloads::needhamSchroederSource(C);
  DartReport Ref = runJobs(Src, "ns_step", 1, 7, 50000, 1);
  ASSERT_FALSE(Ref.BugFound);
  ASSERT_TRUE(Ref.CompleteExploration);
  for (unsigned W : {2u, 4u}) {
    DartReport R = runJobs(Src, "ns_step", 1, 7, 50000, W);
    EXPECT_FALSE(R.BugFound) << "W=" << W;
    EXPECT_TRUE(R.CompleteExploration) << "W=" << W;
    EXPECT_EQ(R.BranchDirectionsCovered, Ref.BranchDirectionsCovered)
        << "W=" << W;
  }
}

TEST(ParallelEngine, NeedhamSchroederDepth2AttackAtEveryWorkerCount) {
  // Lowe's attack projection exists at depth 2; every worker count finds
  // the same security violation.
  workloads::NsConfig C;
  std::string Src = workloads::needhamSchroederSource(C);
  DartReport Ref = runJobs(Src, "ns_step", 2, 7, 50000, 1);
  ASSERT_TRUE(Ref.BugFound);
  for (unsigned W : {2u, 4u}) {
    DartReport R = runJobs(Src, "ns_step", 2, 7, 50000, W);
    ASSERT_TRUE(R.BugFound) << "W=" << W;
    EXPECT_EQ(bugSignatures(R), bugSignatures(Ref)) << "W=" << W;
  }
}

TEST(ParallelEngine, ParallelRunsAreReproducible) {
  // Same options, same worker count -> identical merged report content
  // (runs may interleave differently, the outcome may not).
  std::string Src = workloads::acControllerSource();
  DartReport A = runJobs(Src, "ac_controller", 2, 77, 20000, 4,
                         /*StopAtFirstError=*/false);
  DartReport B = runJobs(Src, "ac_controller", 2, 77, 20000, 4,
                         /*StopAtFirstError=*/false);
  EXPECT_EQ(A.Runs, B.Runs);
  EXPECT_EQ(bugSignatures(A), bugSignatures(B));
  EXPECT_EQ(A.BranchDirectionsCovered, B.BranchDirectionsCovered);
  EXPECT_EQ(A.CompleteExploration, B.CompleteExploration);
}

TEST(ParallelEngine, SolverCacheHitsAcrossRestarts) {
  // The nonlinear guard keeps clearing AllLinear, so the engine restarts
  // until the budget runs out; each restart tree re-proves the same
  // doomed negation [y > 5 && y < 3], which the shared cache memoizes.
  const char *Program = R"(
    int f(int x, int y) {
      if (x * x == -1) return 0;  /* nonlinear: never complete */
      if (y > 5) { if (y < 3) abort(); }
      return 1;
    }
  )";
  auto D = compile(Program);
  DartOptions Opts;
  Opts.ToplevelName = "f";
  Opts.MaxRuns = 60;
  Opts.Jobs = 2;
  // Incremental mode answers the repeated unsat probe from the shared
  // session fingerprint cache; batch mode from the legacy query cache.
  DartReport R = D->run(Opts);
  EXPECT_FALSE(R.BugFound);
  EXPECT_EQ(R.Runs, 60u);
  EXPECT_GT(R.Solver.SessionCacheHits, 0u);
  EXPECT_GT(R.Solver.SessionCacheMisses, 0u);

  Opts.Solver.IncrementalSessions = false;
  DartReport B = D->run(Opts);
  EXPECT_FALSE(B.BugFound);
  EXPECT_EQ(B.Runs, 60u);
  EXPECT_GT(B.Solver.CacheHits, 0u);
  EXPECT_GT(B.Solver.CacheMisses, 0u);
}

TEST(ParallelEngine, WrapProneSumsStayMismatchFreeAtEveryWorkerCount) {
  // Regression: full-range random roots make cross-variable sums wrap at
  // 32 bits, so the recorded linear constraints misstate the executed
  // path. Speculative expansion solves every flip against the root's
  // huge-value hint; without the realizability retry in solveCandidates,
  // those flips come back as the old inputs (or as freshly wrapping
  // models) and every one burns a run on a guaranteed forcing mismatch —
  // hundreds of them, where the sequential engine shows none.
  const char *Program = R"(
    int small(int a, int b) {
      int z = 0;
      if (a + b > 0) z = z + 1;
      if (a - b > 3) z = z + 1;
      if (a + 2 * b > 5) z = z + 1;
      return z;
    }
  )";
  DartReport Ref = runJobs(Program, "small", 1, 2005, 100, 1, false);
  EXPECT_EQ(Ref.ForcingMismatches, 0u);
  EXPECT_TRUE(Ref.CompleteExploration);
  for (unsigned W : {2u, 4u}) {
    DartReport R = runJobs(Program, "small", 1, 2005, 100, W, false);
    EXPECT_EQ(R.ForcingMismatches, 0u) << "W=" << W;
    EXPECT_TRUE(R.CompleteExploration) << "W=" << W;
    EXPECT_FALSE(R.BugFound) << "W=" << W;
    EXPECT_EQ(R.BranchDirectionsCovered, Ref.BranchDirectionsCovered)
        << "W=" << W;
  }
}

TEST(ParallelEngine, RandomOnlyModeMatchesBudgetAndStaysBugFree) {
  // §4.1's random baseline under W workers: the run set is seeded by run
  // slot, so the (non-)findings and coverage are worker-count independent.
  std::string Src = workloads::acControllerSource();
  for (unsigned W : {2u, 4u}) {
    auto D = compile(Src);
    DartOptions Opts;
    Opts.ToplevelName = "ac_controller";
    Opts.Depth = 2;
    Opts.Seed = 1;
    Opts.MaxRuns = 500;
    Opts.Jobs = W;
    Opts.RandomOnly = true;
    Opts.TrackCoverageTimeline = true;
    DartReport R = D->run(Opts);
    EXPECT_FALSE(R.BugFound) << "W=" << W;
    EXPECT_EQ(R.Runs, 500u) << "W=" << W;
    ASSERT_EQ(R.CoverageTimeline.size(), R.Runs) << "W=" << W;
    for (size_t I = 1; I < R.CoverageTimeline.size(); ++I)
      EXPECT_GE(R.CoverageTimeline[I], R.CoverageTimeline[I - 1]);
  }
}

TEST(ParallelEngine, StopAtFirstErrorStillStops) {
  // A bug must close the frontier: nowhere near the 20000-run budget is
  // spent once a worker has found the abort.
  DartReport R = runJobs(PaperIntroExample, "h", 1, 42, 20000, 4);
  ASSERT_TRUE(R.BugFound);
  EXPECT_LT(R.Runs, 1000u);
}
