//===- symmem_test.cpp - Unit tests for concolic/SymbolicMemory ------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "concolic/SymbolicMemory.h"

#include <gtest/gtest.h>

using namespace dart;

namespace {

SymValue varValue(InputId Id) { return SymValue(LinearExpr::variable(Id)); }

Addr addr(uint32_t Region, uint32_t Offset) {
  return makeAddr(Region, Offset);
}

} // namespace

TEST(SymbolicMemory, SetAndGet) {
  SymbolicMemory S;
  S.set(addr(0, 0), 4, varValue(1));
  auto V = S.get(addr(0, 0), 4);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->linear().coeff(1), 1);
  EXPECT_EQ(S.size(), 1u);
}

TEST(SymbolicMemory, WidthMismatchMisses) {
  SymbolicMemory S;
  S.set(addr(0, 0), 4, varValue(1));
  EXPECT_FALSE(S.get(addr(0, 0), 1).has_value());
  EXPECT_FALSE(S.get(addr(0, 0), 8).has_value());
}

TEST(SymbolicMemory, ConstantValuesErase) {
  SymbolicMemory S;
  S.set(addr(0, 0), 4, varValue(1));
  S.set(addr(0, 0), 4, SymValue(LinearExpr(5)));
  EXPECT_FALSE(S.get(addr(0, 0), 4).has_value());
  EXPECT_EQ(S.size(), 0u);
}

TEST(SymbolicMemory, OverlappingStoreScrubs) {
  SymbolicMemory S;
  S.set(addr(0, 0), 4, varValue(1));
  S.set(addr(0, 4), 4, varValue(2));
  // An 8-byte store covering both cells kills them.
  S.set(addr(0, 0), 8, varValue(3));
  EXPECT_FALSE(S.get(addr(0, 0), 4).has_value());
  EXPECT_FALSE(S.get(addr(0, 4), 4).has_value());
  ASSERT_TRUE(S.get(addr(0, 0), 8).has_value());
}

TEST(SymbolicMemory, PartialOverlapFromBelowScrubs) {
  SymbolicMemory S;
  S.set(addr(0, 4), 4, varValue(1));
  // A store at offset 2..6 overlaps the cell's first bytes.
  S.set(addr(0, 2), 4, varValue(2));
  EXPECT_FALSE(S.get(addr(0, 4), 4).has_value());
  EXPECT_TRUE(S.get(addr(0, 2), 4).has_value());
}

TEST(SymbolicMemory, EraseRange) {
  SymbolicMemory S;
  S.set(addr(0, 0), 4, varValue(1));
  S.set(addr(0, 8), 4, varValue(2));
  S.set(addr(1, 0), 4, varValue(3));
  S.eraseRange(addr(0, 0), 16);
  EXPECT_FALSE(S.get(addr(0, 0), 4).has_value());
  EXPECT_FALSE(S.get(addr(0, 8), 4).has_value());
  EXPECT_TRUE(S.get(addr(1, 0), 4).has_value())
      << "other regions untouched";
}

TEST(SymbolicMemory, CopyRangeMovesCells) {
  SymbolicMemory S;
  S.set(addr(0, 0), 4, varValue(1));
  S.set(addr(0, 4), 1, varValue(2));
  S.set(addr(1, 4), 4, varValue(9)); // stale destination cell
  S.copyRange(addr(1, 0), addr(0, 0), 8);
  auto V0 = S.get(addr(1, 0), 4);
  ASSERT_TRUE(V0.has_value());
  EXPECT_EQ(V0->linear().coeff(1), 1);
  auto V1 = S.get(addr(1, 4), 1);
  ASSERT_TRUE(V1.has_value());
  EXPECT_EQ(V1->linear().coeff(2), 1);
  EXPECT_FALSE(S.get(addr(1, 4), 4).has_value()) << "stale cell scrubbed";
  // Source cells intact.
  EXPECT_TRUE(S.get(addr(0, 0), 4).has_value());
}

TEST(SymbolicMemory, CopyRangeSelfIsNoOp) {
  SymbolicMemory S;
  S.set(addr(0, 0), 4, varValue(1));
  S.copyRange(addr(0, 0), addr(0, 0), 8);
  EXPECT_TRUE(S.get(addr(0, 0), 4).has_value());
}

TEST(SymbolicMemory, CellStraddlingRangeEndIsNotCopied) {
  SymbolicMemory S;
  // 4-byte cell at offset 6 extends beyond a copy of [0, 8).
  S.set(addr(0, 6), 4, varValue(1));
  S.copyRange(addr(1, 0), addr(0, 0), 8);
  EXPECT_FALSE(S.get(addr(1, 6), 4).has_value());
}

TEST(SymbolicMemory, PredValuesStored) {
  SymbolicMemory S;
  S.set(addr(0, 0), 4, SymValue(SymPred(CmpPred::Lt, LinearExpr::variable(0))));
  auto V = S.get(addr(0, 0), 4);
  ASSERT_TRUE(V.has_value());
  EXPECT_TRUE(V->isPred());
}

TEST(SymbolicMemory, Clear) {
  SymbolicMemory S;
  S.set(addr(0, 0), 4, varValue(1));
  S.clear();
  EXPECT_EQ(S.size(), 0u);
}
