//===- symbolic_test.cpp - Unit tests for src/symbolic ----------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"
#include "symbolic/SymExpr.h"

#include <gtest/gtest.h>

using namespace dart;

namespace {

std::function<int64_t(InputId)> assign(std::map<InputId, int64_t> Values) {
  return [Values = std::move(Values)](InputId Id) {
    auto It = Values.find(Id);
    return It == Values.end() ? 0 : It->second;
  };
}

} // namespace

TEST(LinearExpr, ConstantsAndVariables) {
  LinearExpr C(7);
  EXPECT_TRUE(C.isConstant());
  EXPECT_EQ(C.constant(), 7);

  LinearExpr X = LinearExpr::variable(3);
  EXPECT_FALSE(X.isConstant());
  EXPECT_EQ(X.coeff(3), 1);
  EXPECT_EQ(X.coeff(4), 0);
}

TEST(LinearExpr, AddCombinesAndCancels) {
  LinearExpr X = LinearExpr::variable(0);
  LinearExpr Y = LinearExpr::variable(1);
  auto Sum = X.add(Y);
  ASSERT_TRUE(Sum);
  EXPECT_EQ(Sum->coeff(0), 1);
  EXPECT_EQ(Sum->coeff(1), 1);

  auto NegX = X.negate();
  auto Zero = Sum->add(*NegX);
  ASSERT_TRUE(Zero);
  EXPECT_EQ(Zero->coeff(0), 0);
  EXPECT_EQ(Zero->coeff(1), 1);
  EXPECT_EQ(Zero->coeffs().size(), 1u) << "cancelled terms are erased";
}

TEST(LinearExpr, ScaleAndEvaluate) {
  // 3*x0 - 2*x1 + 5
  auto E = LinearExpr::variable(0).scale(3)->add(
      *LinearExpr::variable(1).scale(-2)->add(LinearExpr(5)));
  ASSERT_TRUE(E);
  EXPECT_EQ(E->evaluate(assign({{0, 10}, {1, 4}})), 30 - 8 + 5);
  EXPECT_EQ(E->evaluate(assign({})), 5);
}

TEST(LinearExpr, ScaleByZeroIsZero) {
  auto Z = LinearExpr::variable(7).scale(0);
  ASSERT_TRUE(Z);
  EXPECT_TRUE(Z->isConstant());
  EXPECT_EQ(Z->constant(), 0);
}

TEST(LinearExpr, OverflowDetected) {
  LinearExpr Big(INT64_MAX);
  EXPECT_FALSE(Big.add(LinearExpr(1)).has_value());
  EXPECT_FALSE(Big.scale(2).has_value());
  auto BigCoeff = LinearExpr::variable(0).scale(INT64_MAX);
  ASSERT_TRUE(BigCoeff);
  EXPECT_FALSE(BigCoeff->scale(2).has_value());
  EXPECT_FALSE(BigCoeff->add(*BigCoeff).has_value());
}

TEST(LinearExpr, InputsListed) {
  auto E = LinearExpr::variable(5).add(LinearExpr::variable(2));
  auto Ids = E->inputs();
  ASSERT_EQ(Ids.size(), 2u);
  EXPECT_EQ(Ids[0], 2u);
  EXPECT_EQ(Ids[1], 5u);
}

TEST(LinearExpr, Printing) {
  auto E = LinearExpr::variable(0).scale(2)->add(
      *LinearExpr::variable(1).negate()->add(LinearExpr(-3)));
  EXPECT_EQ(E->toString(), "2*x0 - x1 - 3");
  EXPECT_EQ(LinearExpr(0).toString(), "0");
}

// Property: (a op b).evaluate == a.evaluate op b.evaluate for random
// expressions (checked add/sub/scale agree with direct evaluation).
TEST(LinearExpr, EvaluationHomomorphismProperty) {
  Rng R(77);
  for (int Trial = 0; Trial < 200; ++Trial) {
    auto RandomLin = [&]() {
      LinearExpr E(static_cast<int64_t>(R.nextBits(16)));
      for (int T = 0; T < 3; ++T) {
        InputId Id = static_cast<InputId>(R.nextBelow(4));
        auto Term = LinearExpr::variable(Id).scale(R.nextBits(8));
        auto Sum = E.add(*Term);
        if (Sum)
          E = *Sum;
      }
      return E;
    };
    LinearExpr A = RandomLin(), B = RandomLin();
    std::map<InputId, int64_t> V;
    for (InputId Id = 0; Id < 4; ++Id)
      V[Id] = R.nextBits(16);
    auto ValueOf = assign(V);
    if (auto Sum = A.add(B)) {
      EXPECT_EQ(Sum->evaluate(ValueOf),
                A.evaluate(ValueOf) + B.evaluate(ValueOf));
    }
    if (auto Diff = A.sub(B)) {
      EXPECT_EQ(Diff->evaluate(ValueOf),
                A.evaluate(ValueOf) - B.evaluate(ValueOf));
    }
    int64_t K = R.nextBits(8);
    if (auto Scaled = A.scale(K)) {
      EXPECT_EQ(Scaled->evaluate(ValueOf), A.evaluate(ValueOf) * K);
    }
  }
}

TEST(SymPred, MakeNormalizesToLhsMinusRhs) {
  // x0 < x1  ==>  x0 - x1 < 0
  auto P = SymPred::make(CmpPred::Lt, LinearExpr::variable(0),
                         LinearExpr::variable(1));
  ASSERT_TRUE(P);
  EXPECT_TRUE(P->holds(assign({{0, 1}, {1, 2}})));
  EXPECT_FALSE(P->holds(assign({{0, 2}, {1, 2}})));
}

// Negation truth table across all predicates.
class SymPredNegationTest : public ::testing::TestWithParam<CmpPred> {};

TEST_P(SymPredNegationTest, NegationFlipsTruth) {
  CmpPred Pred = GetParam();
  Rng R(123);
  for (int Trial = 0; Trial < 100; ++Trial) {
    auto P = SymPred::make(Pred,
                           *LinearExpr::variable(0).scale(R.nextBits(6)),
                           LinearExpr(R.nextBits(10)));
    ASSERT_TRUE(P);
    auto V = assign({{0, R.nextBits(10)}});
    EXPECT_NE(P->holds(V), P->negated().holds(V));
    // Double negation is identity.
    EXPECT_EQ(P->holds(V), P->negated().negated().holds(V));
  }
}

INSTANTIATE_TEST_SUITE_P(AllPreds, SymPredNegationTest,
                         ::testing::Values(CmpPred::Eq, CmpPred::Ne,
                                           CmpPred::Lt, CmpPred::Le,
                                           CmpPred::Gt, CmpPred::Ge));

TEST(SymPred, ConstantPredicate) {
  SymPred P(CmpPred::Eq, LinearExpr(0));
  EXPECT_TRUE(P.isConstant());
  EXPECT_TRUE(P.holds(assign({})));
  SymPred Q(CmpPred::Eq, LinearExpr(3));
  EXPECT_FALSE(Q.holds(assign({})));
}

TEST(SymPred, Printing) {
  auto P = SymPred::make(CmpPred::Ge, LinearExpr::variable(2),
                         LinearExpr(10));
  EXPECT_EQ(P->toString(), "x2 - 10 >= 0");
}

TEST(SymValue, KindsAndAccessors) {
  SymValue L{LinearExpr::variable(1)};
  EXPECT_TRUE(L.isLinear());
  EXPECT_FALSE(L.isConstant());
  EXPECT_EQ(L.inputs().size(), 1u);

  SymValue P{SymPred(CmpPred::Lt, LinearExpr::variable(0))};
  EXPECT_TRUE(P.isPred());
  EXPECT_FALSE(P.isConstant());

  SymValue C{LinearExpr(9)};
  EXPECT_TRUE(C.isConstant());
}

TEST(InputInfo, Domains) {
  InputInfo CharIn{InputKind::Integer, ValType::int8(), "c"};
  EXPECT_EQ(CharIn.domainMin(), -128);
  EXPECT_EQ(CharIn.domainMax(), 127);

  InputInfo IntIn{InputKind::Integer, ValType::int32(), "i"};
  EXPECT_EQ(IntIn.domainMin(), INT32_MIN);
  EXPECT_EQ(IntIn.domainMax(), INT32_MAX);

  InputInfo UIn{InputKind::Integer, ValType::uint32(), "u"};
  EXPECT_EQ(UIn.domainMin(), 0);
  EXPECT_EQ(UIn.domainMax(), UINT32_MAX);

  InputInfo LongIn{InputKind::Integer, ValType::int64(), "l"};
  EXPECT_EQ(LongIn.domainMin(), INT64_MIN);
  EXPECT_EQ(LongIn.domainMax(), INT64_MAX);

  InputInfo Choice{InputKind::PointerChoice, ValType::pointer(), "p"};
  EXPECT_EQ(Choice.domainMin(), 0);
  EXPECT_EQ(Choice.domainMax(), 1);
}
