//===- strategy_diff_test.cpp - Strategy engine equivalences --------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The strategy engine's contracts:
//
//  * The incrementally maintained distance-priority table
//    (DistancePriorityTracker) equals the full multi-source BFS
//    (BranchDistanceMap::priorities) after every grow-only coverage
//    delta, including site saturations.
//  * --strategy dfs is untouched by the strategy engine: same report as
//    the seed (golden values), no early exit, no attribution rows; and
//    --strategy portfolio at --jobs 1 degrades to exactly dfs.
//  * Every single strategy is deterministic at --jobs 1: two sessions
//    over the same seed produce identical run logs.
//  * The portfolio at --jobs 4 finds the same bug sets as dfs on §4
//    workloads whose exploration completes within the budget.
//  * The coverable-direction early exit stops a heuristic session the
//    moment its coverage saturates (no trailing budget burn), and never
//    fires for dfs.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "analysis/BranchDistance.h"
#include "support/Rng.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

using namespace dart;
using namespace dart::test;

namespace {

//===----------------------------------------------------------------------===//
// Incremental distance maintenance vs the full-BFS oracle
//===----------------------------------------------------------------------===//

/// Applies randomized grow-only coverage deltas to a tracker and checks it
/// against Map.priorities() after every sync. Mixing single bits with
/// whole-site saturations exercises both the O(1) path and the recompute
/// fallback.
void checkTrackerAgainstOracle(const BranchDistanceMap &Map, uint64_t Seed) {
  const size_t Bits = 2 * size_t(Map.numSites());
  DistancePriorityTracker Tracker(Map);
  std::vector<bool> Covered(Bits, false);
  EXPECT_EQ(Tracker.priorities(), Map.priorities(Covered));

  Rng R(Seed);
  for (int Delta = 0; Delta < 64; ++Delta) {
    // Half the deltas cover one random direction, half saturate a random
    // site; either may be a no-op if the bits are already set (sync must
    // tolerate that too).
    if (R.coinToss()) {
      Covered[R.nextBelow(Bits)] = true;
    } else {
      size_t Site = R.nextBelow(Map.numSites());
      Covered[2 * Site] = Covered[2 * Site + 1] = true;
    }
    Tracker.sync(Covered);
    ASSERT_EQ(Tracker.priorities(), Map.priorities(Covered))
        << "after delta " << Delta << " (seed " << Seed << ")";
  }
  // 64 random deltas over a small module always hit both paths.
  EXPECT_GT(Tracker.incrementalUpdates() + Tracker.fullRecomputes(), 0u);
}

TEST(StrategyDiff, IncrementalTrackerMatchesFullRecompute) {
  auto Toy = compile(R"(
    int helper(int v) {
      if (v > 5)
        return v - 1;
      return v + 1;
    }
    int chain(int x, int y) {
      if (x > 10) {
        if (x > 100)
          return helper(y);
        return 1;
      }
      if (y == 42)
        return 2;
      return 0;
    }
  )");
  BranchDistanceMap ToyMap = BranchDistanceMap::build(Toy->module());
  ASSERT_GT(ToyMap.numSites(), 0u);
  for (uint64_t Seed : {1ull, 7ull, 2005ull})
    checkTrackerAgainstOracle(ToyMap, Seed);

  auto Ac = compile(workloads::acControllerSource());
  BranchDistanceMap AcMap = BranchDistanceMap::build(Ac->module());
  ASSERT_GT(AcMap.numSites(), 0u);
  for (uint64_t Seed : {3ull, 11ull, 2005ull})
    checkTrackerAgainstOracle(AcMap, Seed);
}

//===----------------------------------------------------------------------===//
// Session-level equivalences
//===----------------------------------------------------------------------===//

DartReport runAc(SearchStrategy Strategy, unsigned Jobs, unsigned MaxRuns,
                 unsigned Depth) {
  auto D = compile(workloads::acControllerSource());
  DartOptions Opts;
  Opts.ToplevelName = "ac_controller";
  Opts.Depth = Depth;
  Opts.Seed = 2005;
  Opts.MaxRuns = MaxRuns;
  Opts.StopAtFirstError = false;
  Opts.Jobs = Jobs;
  Opts.Strategy = Strategy;
  Opts.LogRuns = Jobs == 1;
  Opts.TrackCoverageTimeline = true;
  return D->run(Opts);
}

TEST(StrategyDiff, DfsIsUntouchedAndPortfolioAtOneJobIsDfs) {
  DartReport Dfs = runAc(SearchStrategy::DepthFirst, 1, 2000, 2);
  // The seed's golden dfs session: the strategy engine must not perturb
  // the default search by a single run.
  EXPECT_TRUE(Dfs.BugFound);
  EXPECT_TRUE(Dfs.CompleteExploration);
  EXPECT_FALSE(Dfs.StoppedEarly);
  EXPECT_EQ(Dfs.BranchDirectionsCovered, 16u);
  EXPECT_TRUE(Dfs.StrategyMix.empty());
  EXPECT_EQ(Dfs.DistanceIncrementalUpdates, 0u);
  EXPECT_EQ(Dfs.DistanceFullRecomputes, 0u);

  // Portfolio with a single worker has no portfolio to run: it must be
  // the depth-first session, run log and all.
  DartReport P1 = runAc(SearchStrategy::Portfolio, 1, 2000, 2);
  EXPECT_EQ(P1.Runs, Dfs.Runs);
  EXPECT_EQ(P1.Restarts, Dfs.Restarts);
  EXPECT_EQ(P1.BugFound, Dfs.BugFound);
  EXPECT_EQ(P1.CompleteExploration, Dfs.CompleteExploration);
  EXPECT_FALSE(P1.StoppedEarly);
  EXPECT_EQ(P1.Coverage, Dfs.Coverage);
  EXPECT_EQ(P1.RunLog, Dfs.RunLog);
  EXPECT_TRUE(P1.StrategyMix.empty());
}

TEST(StrategyDiff, SingleStrategiesDeterministicAtOneJob) {
  for (SearchStrategy S :
       {SearchStrategy::DepthFirst, SearchStrategy::BreadthFirst,
        SearchStrategy::RandomBranch, SearchStrategy::Distance,
        SearchStrategy::Diversity, SearchStrategy::Portfolio}) {
    DartReport A = runAc(S, 1, 300, 1);
    DartReport B = runAc(S, 1, 300, 1);
    EXPECT_EQ(A.Runs, B.Runs) << searchStrategyName(S);
    EXPECT_EQ(A.BugFound, B.BugFound) << searchStrategyName(S);
    EXPECT_EQ(A.StoppedEarly, B.StoppedEarly) << searchStrategyName(S);
    EXPECT_EQ(A.Coverage, B.Coverage) << searchStrategyName(S);
    EXPECT_EQ(A.RunLog, B.RunLog) << searchStrategyName(S);
  }
}

std::set<std::string> bugSet(const DartReport &R) {
  std::set<std::string> Set;
  for (const BugInfo &B : R.Bugs)
    Set.insert(B.Error.toString());
  return Set;
}

TEST(StrategyDiff, PortfolioAtFourJobsMatchesDfsBugSets) {
  // Workloads whose exploration completes within the budget: the
  // portfolio must surface exactly the bug set dfs proves exhaustive.
  {
    DartReport Dfs = runAc(SearchStrategy::DepthFirst, 4, 2000, 2);
    DartReport Pf = runAc(SearchStrategy::Portfolio, 4, 2000, 2);
    EXPECT_EQ(bugSet(Pf), bugSet(Dfs)) << "ac_controller";
    EXPECT_EQ(Pf.BranchDirectionsCovered, Dfs.BranchDirectionsCovered);
  }
  {
    workloads::NsConfig Ns;
    Ns.DolevYao = false;
    Ns.Fix = workloads::LoweFix::None;
    auto RunNs = [&](SearchStrategy S) {
      auto D = compile(workloads::needhamSchroederSource(Ns));
      DartOptions Opts;
      Opts.ToplevelName = "ns_step";
      Opts.Depth = 2;
      Opts.Seed = 2005;
      Opts.MaxRuns = 1500;
      Opts.StopAtFirstError = false;
      Opts.Jobs = 4;
      Opts.Strategy = S;
      return D->run(Opts);
    };
    DartReport Dfs = RunNs(SearchStrategy::DepthFirst);
    DartReport Pf = RunNs(SearchStrategy::Portfolio);
    ASSERT_TRUE(Dfs.CompleteExploration);
    EXPECT_TRUE(Pf.CompleteExploration);
    EXPECT_EQ(bugSet(Pf), bugSet(Dfs)) << "needham_schroeder";
    EXPECT_EQ(Pf.BranchDirectionsCovered, Dfs.BranchDirectionsCovered);
  }
}

TEST(StrategyDiff, EarlyExitStopsHeuristicsAtCoverageSaturation) {
  // Sequential early exit is exact: the session ends on the very run
  // that covered the last coverable direction (epsilon = 0).
  DartReport Dist = runAc(SearchStrategy::Distance, 1, 2000, 2);
  EXPECT_TRUE(Dist.StoppedEarly);
  EXPECT_EQ(Dist.BranchDirectionsCovered, 16u);
  ASSERT_EQ(Dist.CoverageTimeline.size(), size_t(Dist.Runs));
  unsigned FirstSaturated = Dist.Runs;
  for (unsigned I = 0; I < Dist.CoverageTimeline.size(); ++I)
    if (Dist.CoverageTimeline[I] >= 16u) {
      FirstSaturated = I + 1;
      break;
    }
  EXPECT_EQ(Dist.Runs, FirstSaturated);
  // And the run count beats the budget by an order of magnitude.
  EXPECT_LT(Dist.Runs, 50u);

  // dfs is exempt: it keeps walking toward the Theorem 1(b) claim, which
  // coverage saturation does not imply.
  DartReport Dfs = runAc(SearchStrategy::DepthFirst, 1, 2000, 2);
  EXPECT_FALSE(Dfs.StoppedEarly);
  EXPECT_TRUE(Dfs.CompleteExploration);
}

} // namespace
