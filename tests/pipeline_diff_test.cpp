//===- pipeline_diff_test.cpp - Incremental vs batch pipeline equivalence -===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The incremental constraint pipeline (interned predicates + prefix-reusing
// solver sessions) is a pure performance lever: with `IncrementalSessions`
// on and off, a DART session over the same program and seed must produce
// the *same* bug sets, coverage bitmaps, and run counts. This suite pins
// that down over the paper's example programs and the §4 workloads, at
// --jobs 1 (where the comparison is byte-exact, including every model
// value) and --jobs 4 (where it must additionally be deterministic across
// repeated runs).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace dart;
using namespace dart::test;

namespace {

struct Scenario {
  const char *Name;
  std::string Source;
  std::string Toplevel;
  unsigned Depth;
  uint64_t Seed;
  unsigned MaxRuns;
};

std::vector<Scenario> scenarios() {
  const char *IntroExample = R"(
    int f(int x) { return 2 * x; }
    int h(int x, int y) {
      if (x != y)
        if (f(x) == x + 10)
          abort();
      return 0;
    }
  )";
  const char *WrapProneSums = R"(
    int g(int a, int b, int c) {
      if (a + b > 100)
        if (b + c == 77)
          if (a != c)
            abort();
      return a + b + c;
    }
  )";
  workloads::NsConfig Ns;
  Ns.DolevYao = false;
  Ns.Fix = workloads::LoweFix::None;
  return {
      {"intro", IntroExample, "h", 1, 42, 200},
      {"wrap_sums", WrapProneSums, "g", 1, 7, 500},
      {"ac_controller", workloads::acControllerSource(), "ac_controller", 2,
       2005, 2000},
      {"needham_schroeder", workloads::needhamSchroederSource(Ns), "ns_step",
       2, 7, 1500},
      {"minisip_get_host", workloads::miniSipSource(), "sip_uri_get_host", 1,
       11, 300},
      {"minisip_receive", workloads::miniSipSource(), "sip_receive", 1, 11,
       300},
  };
}

DartReport runPipeline(const Scenario &S, bool Incremental, unsigned Jobs) {
  auto D = compile(S.Source);
  DartOptions Opts;
  Opts.ToplevelName = S.Toplevel;
  Opts.Depth = S.Depth;
  Opts.Seed = S.Seed;
  Opts.MaxRuns = S.MaxRuns;
  Opts.Jobs = Jobs;
  Opts.StopAtFirstError = false; // collect every distinct error path
  Opts.Solver.IncrementalSessions = Incremental;
  return D->run(Opts);
}

/// Every bug, with its exact inputs: incremental and batch modes must
/// agree not just on which errors exist but on the models that reach them.
/// \p WithRunNumbers includes BugInfo::FoundAtRun — byte-exact, but only
/// meaningful at --jobs 1: the parallel engine's run numbering follows the
/// worker schedule (the bug *content* does not).
std::vector<std::string> bugList(const DartReport &R, bool WithRunNumbers) {
  std::vector<std::string> Out;
  for (const BugInfo &B : R.Bugs) {
    if (WithRunNumbers) {
      Out.push_back(B.toString());
      continue;
    }
    std::string Sig = B.Error.toString();
    for (const auto &[InputName, Value] : B.Inputs)
      Sig += " " + InputName + "=" + std::to_string(Value);
    Out.push_back(std::move(Sig));
  }
  return Out;
}

void expectIdentical(const DartReport &Inc, const DartReport &Bat,
                     const char *Name, bool WithRunNumbers) {
  EXPECT_EQ(Inc.Runs, Bat.Runs) << Name;
  EXPECT_EQ(Inc.Restarts, Bat.Restarts) << Name;
  EXPECT_EQ(Inc.ForcingMismatches, Bat.ForcingMismatches) << Name;
  EXPECT_EQ(Inc.BugFound, Bat.BugFound) << Name;
  EXPECT_EQ(bugList(Inc, WithRunNumbers), bugList(Bat, WithRunNumbers))
      << Name;
  EXPECT_EQ(Inc.CompleteExploration, Bat.CompleteExploration) << Name;
  EXPECT_EQ(Inc.BranchDirectionsCovered, Bat.BranchDirectionsCovered)
      << Name;
  EXPECT_EQ(Inc.Coverage, Bat.Coverage) << Name << ": coverage bitmap";
  EXPECT_EQ(Inc.SolverCalls, Bat.SolverCalls) << Name;
}

} // namespace

TEST(PipelineDiff, SequentialEngineByteIdenticalAcrossModes) {
  uint64_t TotalPushes = 0;
  for (const Scenario &S : scenarios()) {
    DartReport Inc = runPipeline(S, /*Incremental=*/true, /*Jobs=*/1);
    DartReport Bat = runPipeline(S, /*Incremental=*/false, /*Jobs=*/1);
    expectIdentical(Inc, Bat, S.Name, /*WithRunNumbers=*/true);
    // Batch mode must never take the session path; incremental mode must
    // take it somewhere in the suite (some scenarios, like a miniSIP crash
    // before any symbolic branch, legitimately push nothing).
    EXPECT_EQ(Bat.Solver.SessionPushes, 0u) << S.Name;
    TotalPushes += Inc.Solver.SessionPushes;
  }
  EXPECT_GT(TotalPushes, 0u)
      << "the incremental pipeline was never exercised";
}

TEST(PipelineDiff, ParallelEngineIdenticalAcrossModes) {
  for (const Scenario &S : scenarios()) {
    DartReport Inc = runPipeline(S, /*Incremental=*/true, /*Jobs=*/4);
    DartReport Bat = runPipeline(S, /*Incremental=*/false, /*Jobs=*/4);
    expectIdentical(Inc, Bat, S.Name, /*WithRunNumbers=*/false);
  }
}

TEST(PipelineDiff, ParallelIncrementalModeIsDeterministic) {
  for (const Scenario &S : scenarios()) {
    DartReport A = runPipeline(S, /*Incremental=*/true, /*Jobs=*/4);
    DartReport B = runPipeline(S, /*Incremental=*/true, /*Jobs=*/4);
    expectIdentical(A, B, S.Name, /*WithRunNumbers=*/false);
  }
}
