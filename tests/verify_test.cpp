//===- verify_test.cpp - Zone domain and prove-or-test triage -------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Unit coverage for the verification layer:
//
//  * ZoneState: incremental closure, bottom detection, havoc, forward
//    assignments, backward (weakest-precondition) substitutions, join
//    with widening, meet.
//  * The branch-direction prover's three proof shapes on one probe
//    program: forward zone contradiction, disjunctive store WP, and the
//    interprocedural call-site crossing — plus the globals-at-init
//    refinement that is only enabled for depth-1 campaigns.
//  * applyBranchProofs shrinks the coverage universe consistently.
//  * runVerifier + mergeDynamicEvidence verdict flow (UNKNOWN upgraded
//    to BUG by campaign witnesses, PROVED never touched).
//  * --verify on/off leaves a dfs session's observable report unchanged
//    (proofs only shrink the heuristic early-exit universe).
//  * JSON/SARIF renderers emit the expected envelopes.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "analysis/StaticSummary.h"
#include "analysis/Verify.h"
#include "analysis/Zone.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

using namespace dart;
using namespace dart::test;

namespace {

//===----------------------------------------------------------------------===//
// ZoneState
//===----------------------------------------------------------------------===//

TEST(ZoneState, BoundsProjectAndClose) {
  ZoneState Z = ZoneState::top(2);
  EXPECT_FALSE(Z.isBottom());
  // v1 <= 10, v1 >= 3.
  Z.addBound(1, 0, 10);
  Z.addBound(0, 1, -3);
  Interval I1 = Z.varInterval(1);
  EXPECT_EQ(I1.Lo, 3);
  EXPECT_EQ(I1.Hi, 10);
  // v1 - v2 <= -1 and v2 <= 5 must close to v1 <= 4 (tighter than the
  // direct bound 10).
  Z.addBound(1, 2, -1);
  Z.addBound(2, 0, 5);
  EXPECT_EQ(Z.varInterval(1).Hi, 4);
  EXPECT_FALSE(Z.isBottom());
}

TEST(ZoneState, NegativeCycleIsBottom) {
  ZoneState Z = ZoneState::top(2);
  Z.addBound(1, 2, -1); // v1 < v2
  Z.addBound(2, 1, 0);  // v2 <= v1
  EXPECT_TRUE(Z.isBottom());

  ZoneState W = ZoneState::top(1);
  W.addBound(1, 0, 4);  // v1 <= 4
  W.addBound(0, 1, -5); // v1 >= 5
  EXPECT_TRUE(W.isBottom());
}

TEST(ZoneState, HavocForgetsOneCellOnly) {
  ZoneState Z = ZoneState::top(2);
  Z.addBound(1, 0, 7);
  Z.addBound(0, 1, -7); // v1 == 7
  Z.addBound(2, 0, 3);
  Z.havoc(1);
  // Unbounded rows project to the full int64 range.
  EXPECT_EQ(Z.varInterval(1).Lo, INT64_MIN);
  EXPECT_EQ(Z.varInterval(1).Hi, INT64_MAX);
  EXPECT_EQ(Z.varInterval(2).Hi, 3);
  EXPECT_FALSE(Z.isBottom());
}

TEST(ZoneState, ForwardAssignments) {
  ZoneState Z = ZoneState::top(2);
  Z.assignConst(1, 7);
  EXPECT_TRUE(Z.varInterval(1).isSingleton());
  EXPECT_EQ(Z.varInterval(1).Lo, 7);
  // v2 := v1 + 5 gives both the relation and the projection.
  Z.assignOffset(2, 1, 5);
  EXPECT_EQ(Z.varInterval(2).Lo, 12);
  EXPECT_EQ(Z.bound(2, 1), 5);
  EXPECT_EQ(Z.bound(1, 2), -5);
  // v1 := v1 + 2 shifts both its interval and its relation to v2.
  Z.shiftVar(1, 2);
  EXPECT_EQ(Z.varInterval(1).Lo, 9);
  EXPECT_EQ(Z.bound(2, 1), 3);
}

TEST(ZoneState, BackwardSubstituteConst) {
  // NC "v1 >= 7" before `v1 := 3` is unsatisfiable.
  ZoneState NC = ZoneState::top(1);
  NC.addBound(0, 1, -7);
  NC.substituteConst(1, 3);
  EXPECT_TRUE(NC.isBottom());

  // NC "v1 >= 7" before `v1 := 9` is vacuous (and says nothing about v1).
  ZoneState NC2 = ZoneState::top(1);
  NC2.addBound(0, 1, -7);
  NC2.substituteConst(1, 9);
  EXPECT_FALSE(NC2.isBottom());
  EXPECT_EQ(NC2.varInterval(1).Lo, INT64_MIN);
}

TEST(ZoneState, BackwardSubstituteOffset) {
  // NC "v1 >= 7" before `v1 := v2 + 5` becomes "v2 >= 2".
  ZoneState NC = ZoneState::top(2);
  NC.addBound(0, 1, -7);
  NC.substituteOffset(1, 2, 5);
  EXPECT_FALSE(NC.isBottom());
  EXPECT_EQ(NC.varInterval(2).Lo, 2);
  // v1 itself is forgotten.
  EXPECT_EQ(NC.varInterval(1).Hi, INT64_MAX);
}

TEST(ZoneState, JoinIsConvexHullAndWidens) {
  ZoneState A = ZoneState::top(1);
  A.assignConst(1, 1);
  ZoneState B = ZoneState::top(1);
  B.assignConst(1, 4);
  EXPECT_TRUE(A.joinWith(B, /*Widen=*/false));
  EXPECT_EQ(A.varInterval(1).Lo, 1);
  EXPECT_EQ(A.varInterval(1).Hi, 4);
  // A second identical join changes nothing.
  EXPECT_FALSE(A.joinWith(B, /*Widen=*/false));

  ZoneState C = ZoneState::top(1);
  C.assignConst(1, 1);
  ZoneState D = ZoneState::top(1);
  D.assignConst(1, 4);
  EXPECT_TRUE(C.joinWith(D, /*Widen=*/true));
  // Widening jumps the grown upper bound straight to +inf; the stable
  // lower bound survives.
  EXPECT_EQ(C.varInterval(1).Hi, INT64_MAX);
  EXPECT_EQ(C.varInterval(1).Lo, 1);
}

TEST(ZoneState, MeetIntersectsAndDetectsContradiction) {
  ZoneState A = ZoneState::top(1);
  A.addBound(1, 0, 10);
  A.addBound(0, 1, 0); // v1 in [0,10]
  ZoneState B = ZoneState::top(1);
  B.addBound(1, 0, 20);
  B.addBound(0, 1, -5); // v1 in [5,20]
  A.meetWith(B);
  EXPECT_EQ(A.varInterval(1).Lo, 5);
  EXPECT_EQ(A.varInterval(1).Hi, 10);

  ZoneState C = ZoneState::top(1);
  C.assignConst(1, 1);
  ZoneState D = ZoneState::top(1);
  D.assignConst(1, 2);
  C.meetWith(D);
  EXPECT_TRUE(C.isBottom());
}

//===----------------------------------------------------------------------===//
// Prover proof shapes
//===----------------------------------------------------------------------===//

/// One program, four proof shapes:
///  - `y > 200` under 6 <= x <= 99: forward zone contradiction,
///  - `v > 200` in helper, only called with y in [7,100]: needs the
///    interprocedural call-site crossing,
///  - `s == 2` with s in {1,4}: needs the disjunctive backward WP over
///    the two stores,
///  - `g != 1` with g a never-written-before global: needs the
///    globals-at-init entry refinement (depth-1 campaigns only).
const char *probeSource() {
  return R"(
    int g = 1;
    int helper(int v) {
      if (v > 200) { return 0; }
      return v;
    }
    int probe(int x) {
      int y;
      int s;
      if (x > 5) {
        if (x < 100) {
          y = x + 1;
          if (y > 200) { return 1; }
          helper(y);
        }
      }
      if (x < 0) { s = 1; } else { s = 4; }
      if (s == 2) { abort(); }
      if (g != 1) { abort(); }
      g = 2;
      return 0;
    }
  )";
}

/// Proved (Function, Direction) pairs from a full triage of the probe.
std::vector<VerifySite> triageProbe(bool GlobalsStartAtInit,
                                    VerifyStats *StatsOut = nullptr) {
  auto D = compile(probeSource());
  StaticSummary Sum = computeStaticSummary(D->module(), "probe");
  BranchProofs P = proveBranchDirections(D->module(), "probe", Sum,
                                         GlobalsStartAtInit);
  VerifyResult R =
      runVerifier(D->module(), "probe", Sum, P, GlobalsStartAtInit);
  if (StatsOut)
    *StatsOut = R.Stats;
  return R.Sites;
}

/// The branch-direction verdict at (Function, Site ordinal within the
/// function's proved/unknown listing) identified by its detail needle.
const VerifySite *findDir(const std::vector<VerifySite> &Sites,
                          const std::string &Fn, bool Direction,
                          Verdict V) {
  for (const VerifySite &S : Sites)
    if (S.Kind == VerifySiteKind::BranchDir && S.Function == Fn &&
        S.Direction == Direction && S.V == V)
      return &S;
  return nullptr;
}

TEST(Prover, ForwardAndWpProofShapes) {
  VerifyStats Stats;
  std::vector<VerifySite> Sites = triageProbe(/*GlobalsStartAtInit=*/true,
                                              &Stats);

  // Both proof engines fired.
  EXPECT_GE(Stats.ForwardProofs, 1u);
  EXPECT_GE(Stats.WpProofs, 1u);
  EXPECT_EQ(Stats.DirsProved, Stats.ForwardProofs + Stats.WpProofs);
  EXPECT_GT(Stats.WpItems, 0u);
  EXPECT_GE(Stats.FunctionsConverged, 2u);

  // helper's `v > 200` true direction is proved interprocedurally.
  const VerifySite *H = findDir(Sites, "helper", true, Verdict::Proved);
  ASSERT_NE(H, nullptr);
  EXPECT_FALSE(H->Detail.empty());

  // In probe, exactly the three infeasible true directions are proved:
  // `y > 200`, `s == 2`, and `g != 1`.
  unsigned ProbeProvedTrue = 0;
  for (const VerifySite &S : Sites)
    if (S.Kind == VerifySiteKind::BranchDir && S.Function == "probe" &&
        S.Direction && S.V == Verdict::Proved)
      ++ProbeProvedTrue;
  EXPECT_EQ(ProbeProvedTrue, 3u);

  // At least one proof chain cites the forward zone state and one cites
  // the WP refinement — the chains are the PROVED payload.
  bool SawForwardChain = false, SawWpChain = false;
  for (const VerifySite &S : Sites) {
    if (S.V != Verdict::Proved)
      continue;
    SawForwardChain |= S.Detail.find("forward zone state") != std::string::npos;
    SawWpChain |=
        S.Detail.find("weakest-precondition") != std::string::npos;
  }
  EXPECT_TRUE(SawForwardChain);
  EXPECT_TRUE(SawWpChain);

  // The abort guarded by `s == 2` is proved unreachable as a site.
  bool ProvedAbort = false;
  for (const VerifySite &S : Sites)
    ProvedAbort |= S.Kind == VerifySiteKind::AbortSite &&
                   S.V == Verdict::Proved;
  EXPECT_TRUE(ProvedAbort);
}

TEST(Prover, GlobalsAtInitOnlyRefinesDepthOneCampaigns) {
  // With globals pinned to the initial image (depth-1 campaigns), the
  // `g != 1` direction is provable; without the pin it must stay
  // unproved — deeper campaigns carry g = 2 across toplevel calls.
  std::vector<VerifySite> Pinned = triageProbe(true);
  std::vector<VerifySite> Unpinned = triageProbe(false);

  unsigned PinnedProved = 0, UnpinnedProved = 0;
  for (const VerifySite &S : Pinned)
    PinnedProved += S.Kind == VerifySiteKind::BranchDir &&
                    S.V == Verdict::Proved;
  for (const VerifySite &S : Unpinned)
    UnpinnedProved += S.Kind == VerifySiteKind::BranchDir &&
                      S.V == Verdict::Proved;
  EXPECT_EQ(PinnedProved, UnpinnedProved + 1);
  EXPECT_NE(findDir(Unpinned, "probe", true, Verdict::Unknown), nullptr);
}

TEST(Prover, ApplyBranchProofsShrinksCoverageUniverse) {
  auto D = compile(probeSource());
  StaticSummary Sum = computeStaticSummary(D->module(), "probe");
  BranchProofs P =
      proveBranchDirections(D->module(), "probe", Sum, true);
  ASSERT_GT(P.ProvedCount, 0u);

  unsigned Before = Sum.CoverableCount;
  // Every proved bit was coverable before the proofs.
  for (size_t Bit = 0; Bit < P.ProvedDirs.size(); ++Bit)
    if (P.ProvedDirs[Bit]) {
      EXPECT_TRUE(Sum.CoverableDirs[Bit]) << "bit " << Bit;
    }

  applyBranchProofs(Sum, P);
  EXPECT_EQ(Sum.CoverableCount, Before - P.ProvedCount);
  for (size_t Bit = 0; Bit < P.ProvedDirs.size(); ++Bit)
    if (P.ProvedDirs[Bit]) {
      EXPECT_FALSE(Sum.CoverableDirs[Bit]) << "bit " << Bit;
    }

  // Chains exist exactly for proved bits.
  for (size_t Bit = 0; Bit < P.ProvedDirs.size(); ++Bit)
    EXPECT_EQ(!P.Chains[Bit].empty(), bool(P.ProvedDirs[Bit]))
        << "bit " << Bit;
}

//===----------------------------------------------------------------------===//
// Verdict flow: runVerifier + mergeDynamicEvidence
//===----------------------------------------------------------------------===//

/// Translate a campaign report into analysis-layer evidence, the same
/// way the `dart verify` command does.
CampaignEvidence evidenceFrom(const DartReport &Rep) {
  CampaignEvidence E;
  E.Coverage = Rep.Coverage;
  for (const BugInfo &B : Rep.Bugs) {
    CampaignEvidence::Error Err;
    Err.Loc = B.Error.Loc;
    Err.Run = B.FoundAtRun;
    Err.Inputs = B.Inputs;
    Err.Message = B.Error.toString();
    E.Errors.push_back(std::move(Err));
  }
  for (const DirectionWitness &W : Rep.Witnesses) {
    CampaignEvidence::DirWitness DW;
    DW.Bit = W.Bit;
    DW.Run = W.Run;
    DW.Directed = W.Directed;
    DW.Inputs = W.Inputs;
    E.Witnesses.push_back(std::move(DW));
  }
  return E;
}

TEST(Verifier, MergeUpgradesWitnessedUnknownsOnly) {
  const char *Source = R"(
    int f(int x, int y) {
      if (x == 77) {
        return y / (x - 77);
      }
      if (x > 5 && x < 3) { abort(); }
      return 0;
    }
  )";
  auto D = compile(Source);
  StaticSummary Sum = computeStaticSummary(D->module(), "f");
  BranchProofs P = proveBranchDirections(D->module(), "f", Sum, true);
  VerifyResult R = runVerifier(D->module(), "f", Sum, P, true);

  unsigned ProvedBefore = R.count(Verdict::Proved);
  ASSERT_GT(R.count(Verdict::Unknown), 0u);
  EXPECT_EQ(R.count(Verdict::Bug), 0u);

  DartOptions Opts;
  Opts.ToplevelName = "f";
  Opts.Depth = 1;
  Opts.Seed = 2005;
  Opts.MaxRuns = 200;
  Opts.StopAtFirstError = false;
  Opts.CaptureWitnesses = true;
  DartReport Rep = D->run(Opts);
  ASSERT_GT(Rep.Bugs.size(), 0u); // the division by zero at x == 77

  mergeDynamicEvidence(R, evidenceFrom(Rep));

  // Proofs are never touched by dynamic evidence.
  EXPECT_EQ(R.count(Verdict::Proved), ProvedBefore);
  // The concolically-hit division became a BUG with its witness run.
  unsigned Bugs = 0;
  for (const VerifySite &S : R.Sites)
    if (S.V == Verdict::Bug) {
      ++Bugs;
      EXPECT_GT(S.WitnessRun, 0u) << S.Detail;
      EXPECT_FALSE(S.Detail.empty());
    }
  EXPECT_GT(Bugs, 0u);
  // Every covered branch direction is now BUG (covered == witnessed),
  // every uncovered unproved one stays UNKNOWN.
  for (const VerifySite &S : R.Sites) {
    if (S.Kind != VerifySiteKind::BranchDir)
      continue;
    size_t Bit = 2 * size_t(S.Site) + (S.Direction ? 1 : 0);
    if (S.V == Verdict::Unknown) {
      EXPECT_FALSE(Rep.Coverage[Bit]) << "site " << S.Site;
    }
    if (Bit < Rep.Coverage.size() && Rep.Coverage[Bit] &&
        S.V != Verdict::Proved) {
      EXPECT_EQ(S.V, Verdict::Bug) << "site " << S.Site;
    }
  }
}

//===----------------------------------------------------------------------===//
// Engine integration: --verify off diff-identity for dfs
//===----------------------------------------------------------------------===//

DartReport runProbe(bool Verify, unsigned Jobs) {
  auto D = compile(probeSource());
  DartOptions Opts;
  Opts.ToplevelName = "probe";
  Opts.Depth = 1;
  Opts.Seed = 2005;
  Opts.MaxRuns = 400;
  Opts.StopAtFirstError = false;
  Opts.Jobs = Jobs;
  Opts.Verify = Verify;
  return D->run(Opts);
}

TEST(Verifier, DfsSessionUnchangedByProofs) {
  DartReport On = runProbe(true, 1);
  DartReport Off = runProbe(false, 1);

  // dfs never consults the coverable-direction early exit, so proofs
  // must not perturb the search in any observable way.
  EXPECT_EQ(On.Runs, Off.Runs);
  EXPECT_EQ(On.SolverCalls, Off.SolverCalls);
  EXPECT_EQ(On.Coverage, Off.Coverage);
  EXPECT_EQ(On.Bugs.size(), Off.Bugs.size());
  EXPECT_EQ(On.toString(), Off.toString());

  // The report-only verifier fields do differ: proofs shrink the
  // universe and certify completeness once the rest is covered.
  EXPECT_GT(On.DirsProvedInfeasible, 0u);
  EXPECT_EQ(Off.DirsProvedInfeasible, 0u);
  EXPECT_LT(On.CoverableDirsTotal, Off.CoverableDirsTotal);
  EXPECT_TRUE(On.CoverageCertified);
}

TEST(Verifier, CertificateRequiresProofsOnProbe) {
  // Without proofs the probe can never certify: three directions are
  // infeasible, so the unproved universe cannot saturate.
  DartReport Off = runProbe(false, 1);
  EXPECT_FALSE(Off.CoverageCertified);
  EXPECT_LT(Off.CoverableCovered, Off.CoverableDirsTotal);

  DartReport On4 = runProbe(true, 4);
  DartReport Off4 = runProbe(false, 4);
  EXPECT_EQ(On4.Coverage, Off4.Coverage);
  EXPECT_EQ(On4.Bugs.size(), Off4.Bugs.size());
  EXPECT_TRUE(On4.CoverageCertified);
}

//===----------------------------------------------------------------------===//
// Renderers
//===----------------------------------------------------------------------===//

TEST(Verifier, JsonAndSarifEnvelopes) {
  VerifyStats Stats;
  auto D = compile(probeSource());
  StaticSummary Sum = computeStaticSummary(D->module(), "probe");
  BranchProofs P = proveBranchDirections(D->module(), "probe", Sum, true);
  VerifyResult R = runVerifier(D->module(), "probe", Sum, P, true);

  std::string Text = verifyResultToText(R);
  EXPECT_NE(Text.find("PROVED"), std::string::npos);
  EXPECT_NE(Text.find("UNKNOWN"), std::string::npos);
  EXPECT_NE(Text.find("verify: "), std::string::npos);

  std::string Json = verifyResultToJson(R);
  ASSERT_FALSE(Json.empty());
  EXPECT_EQ(Json.front(), '{');
  EXPECT_NE(Json.find("\"sites\""), std::string::npos);
  EXPECT_NE(Json.find("\"summary\""), std::string::npos);
  EXPECT_NE(Json.find("\"proved\""), std::string::npos);

  std::string Sarif = verifyResultToSarif(R);
  ASSERT_FALSE(Sarif.empty());
  EXPECT_EQ(Sarif.front(), '{');
  EXPECT_NE(Sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(Sarif.find("sarif-2.1.0.json"), std::string::npos);
  EXPECT_NE(Sarif.find("\"results\""), std::string::npos);

  // Braces balance in both (the envelopes carry no string braces except
  // inside proof chains, which are escaped but still counted — so only
  // check non-negativity plus final zero on the JSON skeleton of the
  // SARIF log, which contains no zone chains).
  auto Balanced = [](const std::string &S) {
    int Depth = 0;
    bool InStr = false;
    for (size_t I = 0; I < S.size(); ++I) {
      char C = S[I];
      if (InStr) {
        if (C == '\\')
          ++I;
        else if (C == '"')
          InStr = false;
        continue;
      }
      if (C == '"')
        InStr = true;
      else if (C == '{')
        ++Depth;
      else if (C == '}' && --Depth < 0)
        return false;
    }
    return Depth == 0;
  };
  EXPECT_TRUE(Balanced(Json));
  EXPECT_TRUE(Balanced(Sarif));
}

} // namespace
