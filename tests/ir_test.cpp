//===- ir_test.cpp - Unit tests for src/ir ----------------------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "ir/Lowering.h"

#include <gtest/gtest.h>

using namespace dart;
using namespace dart::test;

namespace {

LoweredProgram lower(std::string_view Source) {
  DiagnosticsEngine Diags;
  auto TU = parseAndCheck(Source, Diags);
  EXPECT_NE(TU, nullptr) << Diags.toString();
  LoweredProgram P = lowerToIR(*TU, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.toString();
  return P;
}

const IRFunction *fn(const LoweredProgram &P, const std::string &Name) {
  const IRFunction *F = P.Module->findFunction(Name);
  EXPECT_NE(F, nullptr);
  return F;
}

unsigned countKind(const IRFunction &F, Instr::Kind K) {
  unsigned N = 0;
  for (const auto &I : F.Instrs)
    N += I->kind() == K ? 1 : 0;
  return N;
}

/// True if the expression tree contains no loads with side effects — i.e.
/// always true: IR expressions are pure by construction. This helper checks
/// a stronger structural invariant: no expression contains a Call (there is
/// no Call expression kind) and every jump target is in range.
void checkWellFormed(const IRFunction &F) {
  for (const auto &I : F.Instrs) {
    if (const auto *J = dyn_cast<JumpInstr>(I.get())) {
      EXPECT_LT(J->target(), F.Instrs.size());
    }
    if (const auto *CJ = dyn_cast<CondJumpInstr>(I.get())) {
      EXPECT_LT(CJ->trueTarget(), F.Instrs.size());
      EXPECT_LT(CJ->falseTarget(), F.Instrs.size());
    }
  }
  ASSERT_FALSE(F.Instrs.empty());
  // Every function ends with an explicit terminator (implicit Ret added).
  EXPECT_EQ(F.Instrs.back()->kind(), Instr::Kind::Ret);
}

} // namespace

TEST(ValTypeTest, Canonicalize) {
  EXPECT_EQ(ValType::int8().canonicalize(0x1ff), -1);
  EXPECT_EQ(ValType::int8().canonicalize(127), 127);
  EXPECT_EQ(ValType::int8().canonicalize(128), -128);
  EXPECT_EQ(ValType::int32().canonicalize(0x100000000LL), 0);
  EXPECT_EQ(ValType::int32().canonicalize(INT32_MIN), INT32_MIN);
  EXPECT_EQ(ValType::uint32().canonicalize(-1), 4294967295LL);
  EXPECT_EQ(ValType::int64().canonicalize(INT64_MIN), INT64_MIN);
}

TEST(ValTypeTest, NamesAndPredicates) {
  EXPECT_EQ(ValType::int32().toString(), "i32");
  EXPECT_EQ(ValType::uint32().toString(), "u32");
  EXPECT_EQ(ValType::pointer().toString(), "ptr");
  EXPECT_EQ(ValType::int64().toString(), "i64");
  EXPECT_TRUE(ValType::pointer() == ValType::pointer());
  EXPECT_FALSE(ValType::int32() == ValType::uint32());
}

TEST(Lowering, StraightLineFunction) {
  auto P = lower("int f(int a) { int b = a + 1; return b * 2; }");
  const IRFunction *F = fn(P, "f");
  checkWellFormed(*F);
  EXPECT_EQ(F->NumParams, 1u);
  EXPECT_GE(countKind(*F, Instr::Kind::Store), 1u);
  EXPECT_EQ(countKind(*F, Instr::Kind::CondJump), 0u);
}

TEST(Lowering, IfElseProducesOneBranchSite) {
  auto P = lower("int f(int a) { if (a > 0) return 1; else return 2; }");
  const IRFunction *F = fn(P, "f");
  checkWellFormed(*F);
  EXPECT_EQ(countKind(*F, Instr::Kind::CondJump), 1u);
  EXPECT_EQ(P.Module->numBranchSites(), 1u);
}

TEST(Lowering, ShortCircuitAndBecomesTwoBranches) {
  auto P = lower("int f(int a, int b) { if (a && b) return 1; return 0; }");
  EXPECT_EQ(countKind(*fn(P, "f"), Instr::Kind::CondJump), 2u);
}

TEST(Lowering, ShortCircuitOrBecomesTwoBranches) {
  auto P = lower("int f(int a, int b) { if (a || b) return 1; return 0; }");
  EXPECT_EQ(countKind(*fn(P, "f"), Instr::Kind::CondJump), 2u);
}

TEST(Lowering, LogicalNotFlipsWithoutExtraBranch) {
  auto P = lower("int f(int a) { if (!a) return 1; return 0; }");
  EXPECT_EQ(countKind(*fn(P, "f"), Instr::Kind::CondJump), 1u);
}

TEST(Lowering, ConstantConditionIsNotABranchSite) {
  // `while (1)` can never be flipped; it must not become a CondJump.
  auto P = lower("int f(void) { while (1) { return 1; } return 0; }");
  EXPECT_EQ(countKind(*fn(P, "f"), Instr::Kind::CondJump), 0u);
}

TEST(Lowering, AssertLowersToBranchPlusAbort) {
  auto P = lower("void f(int x) { assert(x > 0); }");
  const IRFunction *F = fn(P, "f");
  EXPECT_EQ(countKind(*F, Instr::Kind::CondJump), 1u);
  EXPECT_EQ(countKind(*F, Instr::Kind::Abort), 1u);
  bool FoundAssertAbort = false;
  for (const auto &I : F->Instrs)
    if (const auto *A = dyn_cast<AbortInstr>(I.get()))
      FoundAssertAbort = A->why() == AbortKind::AssertFailure;
  EXPECT_TRUE(FoundAssertAbort);
}

TEST(Lowering, AbortCallLowersToAbortInstr) {
  auto P = lower("void f(void) { abort(); }");
  const IRFunction *F = fn(P, "f");
  EXPECT_EQ(countKind(*F, Instr::Kind::Abort), 1u);
  EXPECT_EQ(countKind(*F, Instr::Kind::Call), 0u);
}

TEST(Lowering, ExitLowersToHalt) {
  auto P = lower("void f(void) { exit(0); }");
  EXPECT_EQ(countKind(*fn(P, "f"), Instr::Kind::Halt), 1u);
}

TEST(Lowering, CallsAreFlattenedOutOfExpressions) {
  auto P = lower(R"(
    int g(int x) { return x; }
    int f(int a) { return g(a) + g(a + 1); }
  )");
  const IRFunction *F = fn(P, "f");
  checkWellFormed(*F);
  EXPECT_EQ(countKind(*F, Instr::Kind::Call), 2u);
  // Each call's result lands in a temp slot; two extra slots beyond param.
  EXPECT_GE(F->Slots.size(), 3u);
}

TEST(Lowering, StructAssignBecomesCopy) {
  auto P = lower(R"(
    struct s { int a; int b; };
    void f(struct s *p, struct s *q) { *p = *q; }
  )");
  const IRFunction *F = fn(P, "f");
  EXPECT_EQ(countKind(*F, Instr::Kind::Copy), 1u);
  for (const auto &I : F->Instrs)
    if (const auto *C = dyn_cast<CopyInstr>(I.get())) {
      EXPECT_EQ(C->numBytes(), 8u);
    }
}

TEST(Lowering, GlobalInitializerBytes) {
  auto P = lower("int x = 258; char c = 'A'; long l = -1;");
  const auto &Globals = P.Module->globals();
  ASSERT_EQ(Globals.size(), 3u);
  EXPECT_EQ(Globals[0].SizeBytes, 4u);
  ASSERT_EQ(Globals[0].Init.size(), 4u);
  EXPECT_EQ(Globals[0].Init[0], 2u); // 258 = 0x102 little-endian
  EXPECT_EQ(Globals[0].Init[1], 1u);
  EXPECT_EQ(Globals[1].Init[0], uint8_t('A'));
  EXPECT_EQ(Globals[2].Init.size(), 8u);
  EXPECT_EQ(Globals[2].Init[0], 0xffu);
}

TEST(Lowering, ExternGlobalMarkedAsInput) {
  auto P = lower("extern int env; int x = 1; int f(void) { return env + x; }");
  bool SawInput = false;
  for (const auto &G : P.Module->globals())
    if (G.Name == "env")
      SawInput = G.IsExternInput;
  EXPECT_TRUE(SawInput);
}

TEST(Lowering, StringLiteralsInternedReadOnly) {
  auto P = lower(R"(
    char *f(void) { return "abc"; }
    char *g(void) { return "abc"; }
    char *h(void) { return "xyz"; }
  )");
  unsigned StringGlobals = 0;
  for (const auto &G : P.Module->globals())
    if (G.ReadOnly) {
      ++StringGlobals;
      EXPECT_EQ(G.Init.back(), 0u) << "NUL terminated";
    }
  EXPECT_EQ(StringGlobals, 2u) << "identical literals are shared";
}

TEST(Lowering, LoopShape) {
  auto P = lower("int f(int n) { int s = 0; while (n > 0) { s += n; n -= 1; } return s; }");
  const IRFunction *F = fn(P, "f");
  checkWellFormed(*F);
  EXPECT_EQ(countKind(*F, Instr::Kind::CondJump), 1u);
  EXPECT_GE(countKind(*F, Instr::Kind::Jump), 1u);
}

TEST(Lowering, TernaryUsesTemp) {
  auto P = lower("int f(int a) { return a > 0 ? a : -a; }");
  const IRFunction *F = fn(P, "f");
  checkWellFormed(*F);
  EXPECT_EQ(countKind(*F, Instr::Kind::CondJump), 1u);
}

TEST(Lowering, BranchSiteIdsAreUniquePerModule) {
  auto P = lower(R"(
    int f(int a) { if (a) return 1; return 0; }
    int g(int a) { if (a) if (a > 2) return 1; return 0; }
  )");
  std::set<unsigned> Sites;
  for (const auto &F : P.Module->functions())
    for (const auto &I : F->Instrs)
      if (const auto *CJ = dyn_cast<CondJumpInstr>(I.get())) {
        EXPECT_TRUE(Sites.insert(CJ->siteId()).second);
      }
  EXPECT_EQ(Sites.size(), P.Module->numBranchSites());
  EXPECT_EQ(Sites.size(), 3u);
}

TEST(Lowering, IRExprCloneIsStructurallyEqual) {
  auto P = lower("int f(int a, int b) { return (a + 2 * b) - 1; }");
  const IRFunction *F = fn(P, "f");
  for (const auto &I : F->Instrs)
    if (const auto *R = dyn_cast<RetInstr>(I.get()))
      if (R->value()) {
        EXPECT_EQ(R->value()->toString(), R->value()->clone()->toString());
      }
}

TEST(Lowering, ModulePrinting) {
  auto P = lower("int f(int a) { if (a) return 1; return 0; }");
  std::string Text = P.Module->toString();
  EXPECT_NE(Text.find("func f"), std::string::npos);
  EXPECT_NE(Text.find("if"), std::string::npos);
}

// Every function in a representative corpus lowers to well-formed IR.
class IRWellFormedTest : public ::testing::TestWithParam<const char *> {};

TEST_P(IRWellFormedTest, AllFunctionsWellFormed) {
  auto P = lower(GetParam());
  for (const auto &F : P.Module->functions())
    checkWellFormed(*F);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, IRWellFormedTest,
    ::testing::Values(
        "int f(int n) { int s = 0; for (int i = 0; i < n; ++i) s += i; return s; }",
        "int f(int n) { do { n--; } while (n > 0); return n; }",
        "int f(int n) { while (n) { if (n == 3) break; if (n == 5) continue; n--; } return n; }",
        "int f(int a, int b) { return a && (b || !a); }",
        "int f(int *p) { return p ? *p : 0; }",
        "struct s { int x; struct s *n; }; int f(struct s *p) { int t = 0; while (p != NULL) { t += p->x; p = p->n; } return t; }",
        "int f(void) { int a[4]; int i; for (i = 0; i < 4; i++) a[i] = i * i; return a[3]; }",
        "int f(int x) { return x > 0 ? 1 : x < 0 ? -1 : 0; }",
        "void f(int *p, int n) { int i; for (i = 0; i < n; i++) p[i] = 0; }",
        "int f(char *s) { int n = 0; while (s[n] != '\\0') n++; return n; }"));
