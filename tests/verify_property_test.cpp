//===- verify_property_test.cpp - Proof soundness vs concolic search ------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The soundness contract of the prove-or-test layer, checked dynamically:
// a PROVED verdict claims no machine execution from the campaign entry
// can reach the site/direction, so a full dfs campaign — which Theorem 1
// says explores every feasible path up to its budget — must never
// contradict one.
//
// For each campaign (the §4 workloads plus every defined function of
// every examples/minic fixture, at jobs 1 and jobs 4):
//
//  * no branch direction proved infeasible is ever covered,
//  * no abort/trap-lint site proved unreachable matches any erroring
//    run's location,
//  * after mergeDynamicEvidence, every witnessed site is BUG and no
//    witnessed site remains UNKNOWN — UNKNOWN ∪ BUG exactly covers what
//    the campaign concolically hit,
//  * the merge never changes the number of PROVED sites.
//
// Proofs are computed with GlobalsStartAtInit matching the campaign's
// depth (globals pinned to the initial image only when each run calls
// the toplevel exactly once), the same coupling the engines use.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "analysis/StaticSummary.h"
#include "analysis/Verify.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace dart;
using namespace dart::test;

namespace {

std::string readFixture(const char *Name) {
  std::ifstream In(std::string(DART_MINIC_DIR) + "/" + Name);
  EXPECT_TRUE(In.good()) << Name;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

CampaignEvidence evidenceFrom(const DartReport &Rep) {
  CampaignEvidence E;
  E.Coverage = Rep.Coverage;
  for (const BugInfo &B : Rep.Bugs) {
    CampaignEvidence::Error Err;
    Err.Loc = B.Error.Loc;
    Err.Run = B.FoundAtRun;
    Err.Inputs = B.Inputs;
    Err.Message = B.Error.toString();
    E.Errors.push_back(std::move(Err));
  }
  for (const DirectionWitness &W : Rep.Witnesses) {
    CampaignEvidence::DirWitness DW;
    DW.Bit = W.Bit;
    DW.Run = W.Run;
    DW.Directed = W.Directed;
    DW.Inputs = W.Inputs;
    E.Witnesses.push_back(std::move(DW));
  }
  return E;
}

/// Trap-kind lints can manifest as runtime errors; informational ones
/// cannot, so only the former participate in the location cross-check.
bool trapLike(const VerifySite &S) {
  if (S.Kind == VerifySiteKind::AbortSite)
    return true;
  if (S.Kind != VerifySiteKind::LintSite)
    return false;
  switch (S.Lint) {
  case LintKind::DivisionByZero:
  case LintKind::AssertAlwaysFails:
  case LintKind::NullDereference:
  case LintKind::OutOfBoundsAccess:
  case LintKind::ControlUnreachableBug:
    return true;
  default:
    return false;
  }
}

/// One campaign's soundness check: prove, run full dfs, cross-examine.
void checkCampaign(const Dart &D, const std::string &Toplevel,
                   unsigned Depth, unsigned Jobs, unsigned MaxRuns,
                   const std::string &Label) {
  SCOPED_TRACE(Label + " toplevel=" + Toplevel + " jobs=" +
               std::to_string(Jobs));

  const bool GlobalsStartAtInit = Depth == 1;
  StaticSummary Sum = computeStaticSummary(D.module(), Toplevel);
  BranchProofs P =
      proveBranchDirections(D.module(), Toplevel, Sum, GlobalsStartAtInit);
  VerifyResult R =
      runVerifier(D.module(), Toplevel, Sum, P, GlobalsStartAtInit);

  DartOptions Opts;
  Opts.ToplevelName = Toplevel;
  Opts.Depth = Depth;
  Opts.Seed = 2005;
  Opts.MaxRuns = MaxRuns;
  Opts.StopAtFirstError = false;
  Opts.Jobs = Jobs;
  Opts.CaptureWitnesses = Jobs == 1;
  // The campaign itself runs proof-free: the property must hold against
  // the rawest possible dfs exploration.
  Opts.Verify = false;
  DartReport Rep = D.run(Opts);

  // 1. No proved direction is ever covered. (The engine's bitmap is
  // padded up to a word multiple; the proof vector is exactly 2*sites.)
  ASSERT_LE(P.ProvedDirs.size(), Rep.Coverage.size());
  for (size_t Bit = 0; Bit < P.ProvedDirs.size(); ++Bit)
    EXPECT_FALSE(P.ProvedDirs[Bit] && Rep.Coverage[Bit])
        << "proved-infeasible direction covered: bit " << Bit << "\n"
        << P.Chains[Bit];

  // 2. No proved abort/trap site matches an erroring run's location.
  for (const BugInfo &B : Rep.Bugs)
    for (const VerifySite &S : R.Sites)
      if (S.V == Verdict::Proved && trapLike(S) && S.Loc.isValid()) {
        EXPECT_FALSE(S.Loc == B.Error.Loc)
            << "proved-unreachable site witnessed at run " << B.FoundAtRun
            << ": " << B.Error.toString() << "\n"
            << S.Detail;
      }

  // 3. After the merge, the campaign's evidence is fully absorbed.
  unsigned ProvedBefore = R.count(Verdict::Proved);
  mergeDynamicEvidence(R, evidenceFrom(Rep));
  EXPECT_EQ(R.count(Verdict::Proved), ProvedBefore);
  for (const VerifySite &S : R.Sites) {
    if (S.Kind == VerifySiteKind::BranchDir) {
      size_t Bit = 2 * size_t(S.Site) + (S.Direction ? 1 : 0);
      ASSERT_LT(Bit, Rep.Coverage.size());
      if (Rep.Coverage[Bit])
        EXPECT_EQ(S.V, Verdict::Bug)
            << "covered direction not BUG: site " << S.Site;
      else
        EXPECT_NE(S.V, Verdict::Bug)
            << "uncovered direction marked BUG: site " << S.Site;
    } else if (trapLike(S) && S.V == Verdict::Unknown) {
      for (const BugInfo &B : Rep.Bugs)
        EXPECT_FALSE(S.Loc.isValid() && S.Loc == B.Error.Loc)
            << "witnessed trap site left UNKNOWN: " << S.Function << ":"
            << S.Loc.toString();
    }
  }
}

//===----------------------------------------------------------------------===//
// §4 workloads
//===----------------------------------------------------------------------===//

TEST(VerifyProperty, AcController) {
  auto D = compile(workloads::acControllerSource());
  // Depth 2 reaches Fig. 6's bug (message sequence [0, 3]); globals are
  // NOT at-init here, which is exactly the soundness coupling under
  // test.
  for (unsigned Jobs : {1u, 4u})
    checkCampaign(*D, "ac_controller", 2, Jobs, 400, "ac");
  checkCampaign(*D, "ac_controller", 1, 1, 200, "ac-depth1");
}

TEST(VerifyProperty, NeedhamSchroeder) {
  workloads::NsConfig Cfg;
  auto D = compile(workloads::needhamSchroederSource(Cfg));
  for (unsigned Jobs : {1u, 4u})
    checkCampaign(*D, "ns_step", 2, Jobs, 300, "ns");
}

TEST(VerifyProperty, MiniSip) {
  auto D = compile(workloads::miniSipSource());
  for (unsigned Jobs : {1u, 4u})
    checkCampaign(*D, "sip_receive", 1, Jobs, 150, "minisip");
}

//===----------------------------------------------------------------------===//
// examples/minic fixtures, every defined function as toplevel
//===----------------------------------------------------------------------===//

void checkFixture(const char *Name) {
  auto D = compile(readFixture(Name));
  ASSERT_NE(D, nullptr) << Name;
  bool First = true;
  for (const std::string &Fn : D->definedFunctions()) {
    checkCampaign(*D, Fn, 1, 1, 120, Name);
    // The parallel engine shares the proof application path; one
    // toplevel per fixture at jobs 4 keeps the matrix affordable.
    if (First)
      checkCampaign(*D, Fn, 1, 4, 120, Name);
    First = false;
  }
}

TEST(VerifyProperty, FixtureAcController) { checkFixture("ac_controller.c"); }
TEST(VerifyProperty, FixtureAliasLint) { checkFixture("alias_lint.c"); }
TEST(VerifyProperty, FixtureFilters) { checkFixture("filters.c"); }
TEST(VerifyProperty, FixtureLintClean) { checkFixture("lint_clean.c"); }
TEST(VerifyProperty, FixtureLintSeeded) { checkFixture("lint_seeded.c"); }

} // namespace
