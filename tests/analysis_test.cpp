//===- analysis_test.cpp - IR dataflow framework and static pruning -------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The static layer under the directed search: CFG construction and
// dominators, the generic worklist solver's lattice contract, the
// taint/interval/liveness analyses, the per-site pruning summary, the lint
// pass's exact findings, and — most importantly — the end-to-end guarantee
// that StaticPrune changes *only* solver traffic: bug sets, models,
// coverage bitmaps, and run schedules are identical with the switch on and
// off, at --jobs 1 and --jobs 4.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "analysis/BranchDistance.h"
#include "analysis/Cfg.h"
#include "analysis/Dataflow.h"
#include "analysis/Interval.h"
#include "analysis/Lint.h"
#include "analysis/Liveness.h"
#include "analysis/PointsTo.h"
#include "analysis/Slice.h"
#include "analysis/StaticSummary.h"
#include "analysis/Taint.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace dart;
using namespace dart::test;

namespace {

const IRFunction *findFn(const Dart &D, const std::string &Name) {
  const IRFunction *F = D.module().findFunction(Name);
  EXPECT_NE(F, nullptr) << Name;
  return F;
}

unsigned fnIndex(const IRModule &M, const std::string &Name) {
  for (unsigned I = 0; I < M.functions().size(); ++I)
    if (M.functions()[I]->Name == Name)
      return I;
  ADD_FAILURE() << "no function named " << Name;
  return 0;
}

unsigned slotIndex(const IRFunction &F, const std::string &Name) {
  for (unsigned S = 0; S < F.Slots.size(); ++S)
    if (F.Slots[S].Name == Name)
      return S;
  ADD_FAILURE() << "no slot named " << Name << " in " << F.Name;
  return 0;
}

std::string readFixture(const char *Name) {
  std::ifstream In(std::string(DART_MINIC_DIR) + "/" + Name);
  EXPECT_TRUE(In.good()) << Name;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// The CondJump instructions of \p F in instruction order.
std::vector<const CondJumpInstr *> condJumps(const IRFunction &F) {
  std::vector<const CondJumpInstr *> Out;
  for (const auto &I : F.Instrs)
    if (const auto *CJ = dyn_cast<CondJumpInstr>(I.get()))
      Out.push_back(CJ);
  return Out;
}

//===----------------------------------------------------------------------===//
// CFG and dominators
//===----------------------------------------------------------------------===//

TEST(Cfg, DiamondStructureAndDominators) {
  auto D = compile(R"(
    int f(int x) {
      int r;
      if (x > 0) {
        r = 1;
      } else {
        r = 2;
      }
      return r;
    }
  )");
  const IRFunction *F = findFn(*D, "f");
  Cfg G = Cfg::build(*F);
  ASSERT_GE(G.numBlocks(), 4u);
  EXPECT_EQ(G.entry(), 0u);
  EXPECT_EQ(G.rpo().front(), 0u);

  auto CJs = condJumps(*F);
  ASSERT_EQ(CJs.size(), 1u);
  unsigned Then = G.blockOf(CJs[0]->trueTarget());
  unsigned Else = G.blockOf(CJs[0]->falseTarget());
  EXPECT_NE(Then, Else);

  // Find the join block: the one holding the user `return r`. (The
  // synthesized trailing ret also carries a location, so filter by
  // reachability, not by line.)
  unsigned Join = Cfg::kUnset;
  for (unsigned I = 0; I < F->Instrs.size(); ++I)
    if (isa<RetInstr>(F->Instrs[I].get()) && G.isReachable(G.blockOf(I)))
      Join = G.blockOf(I);
  ASSERT_NE(Join, Cfg::kUnset);

  for (unsigned B : G.rpo()) {
    EXPECT_TRUE(G.dominates(0, B)) << "entry dominates " << B;
    EXPECT_TRUE(G.dominates(B, B)) << "reflexive at " << B;
  }
  EXPECT_TRUE(G.isReachable(Then));
  EXPECT_TRUE(G.isReachable(Else));
  EXPECT_FALSE(G.dominates(Then, Else));
  EXPECT_FALSE(G.dominates(Then, Join));
  EXPECT_FALSE(G.dominates(Else, Join));
  // Both arms' predecessors trace back to a common dominator on the
  // entry side of the diamond.
  EXPECT_TRUE(G.dominates(G.idom(Join), Then));
  EXPECT_TRUE(G.dominates(G.idom(Join), Else));
}

TEST(Cfg, SyntheticTailAfterTotalReturnsIsUnreachable) {
  auto D = compile(R"(
    int g2(int x) {
      if (x > 0)
        return 1;
      return 2;
    }
  )");
  const IRFunction *F = findFn(*D, "g2");
  Cfg G = Cfg::build(*F);
  // Lowering appends a synthetic `ret 0` for the fall-off-the-end case;
  // with every path returning explicitly it has no predecessors.
  unsigned Tail = G.blockOf(unsigned(F->Instrs.size() - 1));
  EXPECT_FALSE(G.isReachable(Tail));
  EXPECT_TRUE(G.block(Tail).Preds.empty());
}

TEST(Cfg, LoopHasBackEdgeAndHeadDominatesBody) {
  auto D = compile(R"(
    int loop(int n) {
      int i;
      int s;
      i = 0;
      s = 0;
      while (i < n) {
        s = s + 2;
        i = i + 1;
      }
      return s;
    }
  )");
  const IRFunction *F = findFn(*D, "loop");
  Cfg G = Cfg::build(*F);
  auto CJs = condJumps(*F);
  ASSERT_EQ(CJs.size(), 1u);
  unsigned Head = Cfg::kUnset;
  for (unsigned I = 0; I < F->Instrs.size(); ++I)
    if (F->Instrs[I].get() == CJs[0])
      Head = G.blockOf(I);
  unsigned Body = G.blockOf(CJs[0]->trueTarget());
  EXPECT_TRUE(G.dominates(Head, Body));
  // The body flows back: some predecessor of the head is dominated by it.
  bool BackEdge = false;
  for (unsigned P : G.block(Head).Preds)
    BackEdge |= G.dominates(Head, P);
  EXPECT_TRUE(BackEdge);
}

//===----------------------------------------------------------------------===//
// Generic solver: lattice contract
//===----------------------------------------------------------------------===//

/// A forward gen/kill bitmask problem (join = union). Small enough to
/// verify the solver's fixpoint equations by hand.
struct BitProblem {
  using Value = unsigned;
  static constexpr bool IsForward = true;
  std::vector<unsigned> Gen, Kill;

  Value initial() { return 0u; }
  Value boundary() { return 1u; }
  bool join(Value &Into, const Value &From) {
    Value Old = Into;
    Into |= From;
    return Into != Old;
  }
  Value transfer(unsigned B, const Value &In) {
    return (In | Gen[B]) & ~Kill[B];
  }
};

TEST(Dataflow, FixpointSatisfiesTheEquationsAndIsIdempotent) {
  auto D = compile(R"(
    int loop(int n) {
      int i;
      i = 0;
      while (i < n)
        i = i + 1;
      return i;
    }
  )");
  const IRFunction *F = findFn(*D, "loop");
  Cfg G = Cfg::build(*F);
  BitProblem P;
  P.Gen.assign(G.numBlocks(), 0);
  P.Kill.assign(G.numBlocks(), 0);
  for (unsigned B = 0; B < G.numBlocks(); ++B) {
    P.Gen[B] = 1u << (1 + B % 5);
    P.Kill[B] = 1u << (1 + (B + 2) % 5);
  }
  auto R = solveDataflow(G, P);
  EXPECT_GT(R.Iterations, 0u);
  // Termination with slack: a 6-bit union lattice over a handful of
  // blocks must settle in a few sweeps.
  EXPECT_LT(R.Iterations, 8 * G.numBlocks());
  for (unsigned B : G.rpo()) {
    // Out = transfer(In): re-running the transfer changes nothing.
    EXPECT_EQ(R.Out[B], P.transfer(B, R.In[B])) << "block " << B;
    // In = boundary/initial joined with every reachable predecessor.
    unsigned In = B == G.entry() ? P.boundary() : P.initial();
    for (unsigned Pred : G.block(B).Preds)
      if (G.isReachable(Pred))
        In |= R.Out[Pred];
    EXPECT_EQ(R.In[B], In) << "block " << B;
  }
}

TEST(Dataflow, GenKillTransferIsMonotone) {
  BitProblem P;
  P.Gen = {0x5u, 0x9u, 0x0u};
  P.Kill = {0x2u, 0x4u, 0x1fu};
  // Every subset pair V <= W must map to transfer(V) <= transfer(W).
  for (unsigned B = 0; B < 3; ++B)
    for (unsigned W = 0; W < 32; ++W)
      for (unsigned V = W;; V = (V - 1) & W) {
        unsigned TV = P.transfer(B, V), TW = P.transfer(B, W);
        EXPECT_EQ(TV & TW, TV) << "block " << B << " V=" << V << " W=" << W;
        if (V == 0)
          break;
      }
}

//===----------------------------------------------------------------------===//
// Interval, taint, liveness
//===----------------------------------------------------------------------===//

TEST(Interval, LoopWidensAndStaysSound) {
  auto D = compile(R"(
    int loop(int n) {
      int i;
      int s;
      i = 0;
      s = 0;
      while (i < n) {
        s = s + 2;
        i = i + 1;
      }
      return s;
    }
  )");
  const IRFunction *F = findFn(*D, "loop");
  Cfg G = Cfg::build(*F);
  TaintResult T = runTaintAnalysis(D->module(), "loop");
  unsigned FnIndex = 0;
  for (unsigned I = 0; I < D->module().functions().size(); ++I)
    if (D->module().functions()[I].get() == F)
      FnIndex = I;
  IntervalAnalysis IA(D->module(), G, T, FnIndex, IntervalAnalysis::Config());
  IA.run();
  EXPECT_TRUE(IA.converged());
  for (unsigned B : G.rpo())
    EXPECT_TRUE(IA.blockExecutable(B)) << "block " << B;

  // The interval of `s` where it is returned must cover every concrete
  // value the loop can produce (0, 2, 4, ...): widening may lose
  // precision, never soundness.
  unsigned SlotS = ~0u;
  for (unsigned S = 0; S < F->Slots.size(); ++S)
    if (F->Slots[S].Name == "s")
      SlotS = S;
  ASSERT_NE(SlotS, ~0u);
  for (unsigned I = 0; I < F->Instrs.size(); ++I) {
    const auto *Ret = dyn_cast<RetInstr>(F->Instrs[I].get());
    if (!Ret || !IA.instrExecutable(I))
      continue;
    AbsState S = IA.stateBefore(I);
    if (S.Slots[SlotS]) {
      const Interval &SI = S.Slots[SlotS]->I;
      EXPECT_TRUE(SI.contains(0));
      EXPECT_TRUE(SI.contains(6)); // n = 3
    }
  }
}

TEST(Taint, ConfigReadsStayUntaintedInputFlowsPropagate) {
  auto D = compile(R"(
    int cfgv = 5;
    int taint_demo(int x) {
      int a;
      int b;
      a = x + 1;
      b = cfgv + 1;
      if (a > 10)
        b = b + 0;
      if (b > 10)
        a = a + 1;
      return a + b;
    }
  )");
  StaticSummary Sum = computeStaticSummary(D->module(), "taint_demo");
  ASSERT_EQ(Sum.NumBranchSites, 2u);
  EXPECT_TRUE(Sum.SiteTainted[0]) << "a > 10 reads the input";
  EXPECT_FALSE(Sum.SiteTainted[1]) << "b only ever holds config data";
  EXPECT_TRUE(Sum.PrunedSites[1]);
  EXPECT_FALSE(Sum.PrunedSites[0]);
}

TEST(Liveness, LoopVariableIsLiveAroundTheBackEdge) {
  auto D = compile(R"(
    int loop(int n) {
      int i;
      int s;
      i = 0;
      s = 0;
      while (i < n) {
        s = s + 2;
        i = i + 1;
      }
      return s;
    }
  )");
  const IRFunction *F = findFn(*D, "loop");
  Cfg G = Cfg::build(*F);
  TaintResult T = runTaintAnalysis(D->module(), "");
  LivenessResult LV = runLivenessAnalysis(G, T, 0);
  unsigned SlotS = ~0u, SlotI = ~0u;
  for (unsigned S = 0; S < F->Slots.size(); ++S) {
    if (F->Slots[S].Name == "s")
      SlotS = S;
    if (F->Slots[S].Name == "i")
      SlotI = S;
  }
  ASSERT_NE(SlotS, ~0u);
  ASSERT_NE(SlotI, ~0u);
  EXPECT_TRUE(LV.Tracked[SlotS]);
  EXPECT_TRUE(LV.Tracked[SlotI]);
  for (unsigned I = 0; I < F->Instrs.size(); ++I) {
    const Instr &In = *F->Instrs[I];
    // Both stores in the loop body feed later reads: neither is dead, and
    // nothing in this function reads an unassigned slot.
    if (const auto *St = dyn_cast<StoreInstr>(&In)) {
      if (const auto *FA = dyn_cast<FrameAddrExpr>(St->address())) {
        if (FA->slotIndex() == SlotS || FA->slotIndex() == SlotI) {
          EXPECT_TRUE(LV.LiveAfter[I][FA->slotIndex()]) << "instr " << I;
        }
      }
    }
    if (isa<RetInstr>(&In) && G.isReachable(G.blockOf(I))) {
      EXPECT_FALSE(LV.DefinitelyUnassignedBefore[I][SlotS]);
    }
  }
}

//===----------------------------------------------------------------------===//
// Static summary: the three pruning conditions
//===----------------------------------------------------------------------===//

TEST(StaticSummary, MonovalentExactNarrowComparisonIsPruned) {
  auto D = compile(R"(
    int charray(char c, int y) {
      if (c < 300) {
        if (y == 5)
          return 1;
      }
      return 0;
    }
  )");
  StaticSummary Sum = computeStaticSummary(D->module(), "charray");
  ASSERT_EQ(Sum.NumBranchSites, 2u);
  EXPECT_TRUE(Sum.SiteTainted[0]);
  EXPECT_TRUE(Sum.SiteMonovalent[0]) << "char is always < 300";
  EXPECT_TRUE(Sum.SiteExact[0]) << "comparison of in-range values";
  EXPECT_TRUE(Sum.PrunedSites[0]);
  EXPECT_FALSE(Sum.PrunedSites[1]) << "y == 5 goes both ways";
  EXPECT_EQ(Sum.prunedCount(), 1u);
}

TEST(StaticSummary, SitesInsideDeadRegionsArePruned) {
  auto D = compile(R"(
    int k = 1;
    int unreach(int x) {
      if (k == 2) {
        if (x == 3)
          return 1;
      }
      return 0;
    }
  )");
  StaticSummary Sum = computeStaticSummary(D->module(), "unreach");
  ASSERT_EQ(Sum.NumBranchSites, 2u);
  EXPECT_FALSE(Sum.SiteTainted[0]) << "k is config, not input";
  EXPECT_TRUE(Sum.PrunedSites[0]);
  EXPECT_TRUE(Sum.SiteUnreachable[1]) << "guarded by k == 2";
  EXPECT_TRUE(Sum.PrunedSites[1]);
}

TEST(StaticSummary, FullyInputDrivenProgramPrunesNothing) {
  const char *IntroExample = R"(
    int f(int x) { return 2 * x; }
    int h(int x, int y) {
      if (x != y)
        if (f(x) == x + 10)
          abort();
      return 0;
    }
  )";
  auto D = compile(IntroExample);
  StaticSummary Sum = computeStaticSummary(D->module(), "h");
  EXPECT_EQ(Sum.prunedCount(), 0u);
  for (unsigned S = 0; S < Sum.NumBranchSites; ++S)
    EXPECT_TRUE(Sum.SiteTainted[S]) << "site " << S;
}

//===----------------------------------------------------------------------===//
// Lint
//===----------------------------------------------------------------------===//

TEST(Lint, SeededDefectsAreFoundAtTheirExactLocations) {
  // Keep in sync with examples/minic/lint_seeded.c (same body, shifted
  // line numbers).
  const char *Seeded = "int mode = 3;\n"             // 1
                       "int seeded(int x) {\n"       // 2
                       "  int unread;\n"             // 3
                       "  int ghost;\n"              // 4
                       "  int y;\n"                  // 5
                       "  unread = x + 1;\n"         // 6
                       "  y = x / (mode - 3);\n"     // 7
                       "  if (mode == 7) {\n"        // 8
                       "    y = y + 1;\n"            // 9
                       "  }\n"                       // 10
                       "  ghost = ghost + y;\n"      // 11
                       "  assert(mode > 5);\n"       // 12
                       "  return y + ghost;\n"       // 13
                       "}\n";
  auto D = compile(Seeded);
  DiagnosticsEngine Diags;
  unsigned N = runLintPass(D->module(), Diags);
  std::vector<std::pair<unsigned, std::string>> Expected = {
      {6, "value stored to 'unread' is never read"},
      {7, "division by zero: divisor is always 0"},
      {8 + 1, "unreachable code in 'seeded'"},
      {11, "'ghost' is read before it is ever assigned"},
      {12, "assertion always fails"},
      {13, "unreachable code in 'seeded'"},
  };
  ASSERT_EQ(N, Expected.size()) << Diags.toString();
  for (size_t I = 0; I < Expected.size(); ++I) {
    EXPECT_EQ(Diags.diagnostics()[I].Loc.Line, Expected[I].first)
        << Diags.diagnostics()[I].toString();
    EXPECT_EQ(Diags.diagnostics()[I].Message, Expected[I].second);
  }
}

TEST(Lint, NoFalsePositivesOnCleanProgramsAndWorkloads) {
  std::vector<std::pair<const char *, std::string>> Clean = {
      {"intro", R"(
        int f(int x) { return 2 * x; }
        int h(int x, int y) {
          if (x != y)
            if (f(x) == x + 10)
              abort();
          return 0;
        }
      )"},
      {"wrap_sums", R"(
        int g(int a, int b, int c) {
          if (a + b > 100)
            if (b + c == 77)
              if (a != c)
                abort();
          return a + b + c;
        }
      )"},
      {"ac_controller", workloads::acControllerSource()},
      {"minisip", workloads::miniSipSource()},
  };
  for (const auto &[Name, Source] : Clean) {
    auto D = compile(Source);
    DiagnosticsEngine Diags;
    EXPECT_EQ(runLintPass(D->module(), Diags), 0u)
        << Name << ":\n"
        << Diags.toString();
  }

  // needham_schroeder carries exactly one genuine finding: the responder
  // records the nonce it received in b_nonce_recv, which no line of the
  // model ever reads back — a true write-only global, not a false
  // positive. Pin it so any additional finding still fails the test.
  {
    auto D = compile(workloads::needhamSchroederSource({}));
    DiagnosticsEngine Diags;
    ASSERT_EQ(runLintPass(D->module(), Diags), 1u) << Diags.toString();
    EXPECT_NE(Diags.diagnostics()[0].Message.find(
                  "global 'b_nonce_recv' is written but never read"),
              std::string::npos)
        << Diags.diagnostics()[0].Message;
  }
}

//===----------------------------------------------------------------------===//
// Points-to
//===----------------------------------------------------------------------===//

TEST(PointsTo, AddressFlowsThroughParamsReturnsAndModRef) {
  auto D = compile(R"(
    int *id(int *p) { return p; }
    void set(int *p, int v) { *p = v; }
    int use(int n) {
      int local;
      int *q;
      local = 0;
      q = id(&local);
      set(q, n);
      return local;
    }
  )");
  const IRModule &M = D->module();
  PointsToResult PT = runPointsToAnalysis(M, "use");
  unsigned Use = fnIndex(M, "use"), Id = fnIndex(M, "id"),
           Set = fnIndex(M, "set");
  unsigned Local = PT.slotLoc(Use, slotIndex(*M.functions()[Use], "local"));
  unsigned Q = PT.slotLoc(Use, slotIndex(*M.functions()[Use], "q"));

  // &local flows into id's parameter, back out through its return node,
  // and lands in q.
  const std::vector<unsigned> &IdRet = PT.returnPointsTo(Id);
  EXPECT_NE(std::find(IdRet.begin(), IdRet.end(), Local), IdRet.end());
  const std::vector<unsigned> &QPts = PT.pointsTo(Q);
  EXPECT_NE(std::find(QPts.begin(), QPts.end(), Local), QPts.end());

  // set writes through its pointer parameter; id only moves the value.
  EXPECT_TRUE(PT.mayMod(Set, Local));
  EXPECT_FALSE(PT.mayMod(Id, Local));
  // use calls set, so its transitive mod set includes local too.
  EXPECT_TRUE(PT.mayMod(Use, Local));

  // local's address escapes use's frame, q's never does.
  EXPECT_TRUE(PT.addressTaken(Use, slotIndex(*M.functions()[Use], "local")));
  EXPECT_FALSE(PT.onlyLocallyAliased(
      Use, slotIndex(*M.functions()[Use], "local")));
  std::vector<bool> Trackable = aliasTrackableSlots(M, Use, PT);
  EXPECT_FALSE(Trackable[slotIndex(*M.functions()[Use], "local")]);
  EXPECT_TRUE(Trackable[slotIndex(*M.functions()[Use], "q")]);

  // Shape stats exist (surfaced by --stats).
  EXPECT_GT(PT.stats().NumLocs, 0u);
  EXPECT_GT(PT.stats().NumConstraints, 0u);
  EXPECT_GT(PT.stats().SolverIterations, 0u);
}

TEST(PointsTo, MallocSitesGetDistinctHeapLocations) {
  auto D = compile(R"(
    int *ga;
    int *gb;
    int *mk(void) { return malloc(8); }
    void build(void) {
      ga = mk();
      gb = malloc(4);
    }
  )");
  const IRModule &M = D->module();
  PointsToResult PT = runPointsToAnalysis(M, "build");
  unsigned Mk = fnIndex(M, "mk"), Build = fnIndex(M, "build");

  auto MallocSite = [&](unsigned Fn) -> int {
    const IRFunction &F = *M.functions()[Fn];
    for (unsigned I = 0; I < F.Instrs.size(); ++I)
      if (const auto *C = dyn_cast<CallInstr>(F.Instrs[I].get()))
        if (C->callee() == "malloc")
          return PT.heapLoc(Fn, I);
    return -1;
  };
  int HeapMk = MallocSite(Mk), HeapBuild = MallocSite(Build);
  ASSERT_GE(HeapMk, 0);
  ASSERT_GE(HeapBuild, 0);
  EXPECT_NE(HeapMk, HeapBuild) << "per-site heap objects must be distinct";
  EXPECT_EQ(PT.kindOf(unsigned(HeapMk)), PointsToResult::LocKind::Heap);

  // ga holds mk's heap object (through the return node), gb the direct
  // allocation.
  unsigned Ga = PT.globalLoc(0), Gb = PT.globalLoc(1);
  const std::vector<unsigned> &GaPts = PT.pointsTo(Ga);
  const std::vector<unsigned> &GbPts = PT.pointsTo(Gb);
  EXPECT_NE(std::find(GaPts.begin(), GaPts.end(), unsigned(HeapMk)),
            GaPts.end());
  EXPECT_NE(std::find(GbPts.begin(), GbPts.end(), unsigned(HeapBuild)),
            GbPts.end());
}

TEST(PointsTo, SelfRecursionIsDetected) {
  auto D = compile(R"(
    int fact(int n) {
      if (n < 2)
        return 1;
      return n * fact(n - 1);
    }
    int plain(int n) { return fact(n) + 1; }
  )");
  const IRModule &M = D->module();
  PointsToResult PT = runPointsToAnalysis(M, "plain");
  EXPECT_TRUE(PT.selfRecursive(fnIndex(M, "fact")));
  EXPECT_FALSE(PT.selfRecursive(fnIndex(M, "plain")));
}

//===----------------------------------------------------------------------===//
// Branch distance
//===----------------------------------------------------------------------===//

TEST(BranchDistance, PrioritiesTrackTheCoverageFrontier) {
  auto D = compile(R"(
    int chain(int x) {
      if (x > 10) {
        if (x > 100) {
          return 2;
        }
        return 1;
      }
      return 0;
    }
  )");
  const IRModule &M = D->module();
  BranchDistanceMap Map = BranchDistanceMap::build(M);
  ASSERT_EQ(Map.numSites(), 2u);
  const IRFunction *F = findFn(*D, "chain");
  std::vector<const CondJumpInstr *> CJs = condJumps(*F);
  ASSERT_EQ(CJs.size(), 2u);
  unsigned Outer = CJs[0]->siteId(), Inner = CJs[1]->siteId();

  // Nothing covered: every direction is priority 0 (itself uncovered).
  std::vector<uint32_t> P = Map.priorities(std::vector<bool>(4, false));
  ASSERT_EQ(P.size(), 2 * Map.numSites());
  for (uint32_t V : P)
    EXPECT_EQ(V, 0u);

  // Outer fully covered, inner untouched: the outer-taken direction lands
  // in the block holding the inner site (finite, small distance); the
  // outer-false direction leads straight to `return 0` and can never
  // reach uncovered code.
  std::vector<bool> Covered(4, false);
  Covered[2 * Outer] = Covered[2 * Outer + 1] = true;
  P = Map.priorities(Covered);
  EXPECT_GE(P[2 * Outer + 1], 1u);
  EXPECT_LT(P[2 * Outer + 1], BranchDistanceMap::kUnreachablePriority);
  EXPECT_EQ(P[2 * Outer], BranchDistanceMap::kUnreachablePriority);
  EXPECT_EQ(P[2 * Inner], 0u);
  EXPECT_EQ(P[2 * Inner + 1], 0u);

  // Everything covered: nothing is urgent anywhere.
  P = Map.priorities(std::vector<bool>(4, true));
  for (uint32_t V : P)
    EXPECT_EQ(V, BranchDistanceMap::kUnreachablePriority);
}

//===----------------------------------------------------------------------===//
// New lint checks and the JSON format
//===----------------------------------------------------------------------===//

TEST(Lint, GuaranteedMemorySafetyDefectsAreFound) {
  const char *Bad = "int *keep;\n"          // 1
                    "int *leak(void) {\n"   // 2
                    "  int local;\n"        // 3
                    "  local = 5;\n"        // 4
                    "  return &local;\n"    // 5
                    "}\n"                   // 6
                    "void stash(void) {\n"  // 7
                    "  int cell;\n"         // 8
                    "  cell = 1;\n"         // 9
                    "  keep = &cell;\n"     // 10
                    "}\n"                   // 11
                    "int oob(int i) {\n"    // 12
                    "  int a[4];\n"         // 13
                    "  a[0] = i;\n"         // 14
                    "  a[6] = 2;\n"         // 15
                    "  return a[0];\n"      // 16
                    "}\n"                   // 17
                    "int nullread(void) {\n" // 18
                    "  int *p;\n"            // 19
                    "  p = 0;\n"             // 20
                    "  return *p;\n"         // 21
                    "}\n";
  auto D = compile(Bad);
  std::vector<LintFinding> Fs = runLintAnalysis(D->module());
  auto Has = [&](LintKind K, unsigned Line) {
    return std::any_of(Fs.begin(), Fs.end(), [&](const LintFinding &F) {
      return F.Kind == K && F.Loc.Line == Line;
    });
  };
  EXPECT_TRUE(Has(LintKind::StackAddressEscape, 5)) << "returned &local";
  EXPECT_TRUE(Has(LintKind::StackAddressEscape, 10)) << "stored &cell";
  EXPECT_TRUE(Has(LintKind::OutOfBoundsAccess, 15)) << "a[6] of int[4]";
  EXPECT_TRUE(Has(LintKind::NullDereference, 21)) << "*p with p == 0";
}

TEST(Lint, AliasFixtureAndCleanFixtureStayFindingFree) {
  for (const char *Name : {"alias_lint.c", "lint_clean.c"}) {
    auto D = compile(readFixture(Name));
    std::vector<LintFinding> Fs = runLintAnalysis(D->module());
    for (const LintFinding &F : Fs)
      ADD_FAILURE() << Name << ": " << lintKindName(F.Kind) << " at line "
                    << F.Loc.Line << ": " << F.Message;
  }
}

TEST(Lint, JsonOutputParsesAndMatchesTextFindings) {
  auto D = compile(readFixture("lint_seeded.c"));
  std::vector<LintFinding> Fs = runLintAnalysis(D->module());
  ASSERT_FALSE(Fs.empty());

  // Text mode (the diagnostics wrapper) sees exactly the same findings.
  DiagnosticsEngine Diags;
  EXPECT_EQ(runLintPass(D->module(), Diags), Fs.size());

  std::string Json = lintFindingsToJson("lint_seeded.c", Fs);
  ASSERT_FALSE(Json.empty());
  EXPECT_EQ(Json.front(), '{');
  EXPECT_EQ(Json.back(), '}');
  // Structurally well formed: braces balance and never go negative, and
  // unescaped quotes come in pairs.
  int Depth = 0;
  unsigned Quotes = 0;
  bool InString = false;
  for (size_t I = 0; I < Json.size(); ++I) {
    char C = Json[I];
    if (InString) {
      if (C == '\\')
        ++I;
      else if (C == '"') {
        InString = false;
        ++Quotes;
      }
      continue;
    }
    if (C == '"') {
      InString = true;
      ++Quotes;
    } else if (C == '{' || C == '[') {
      ++Depth;
    } else if (C == '}' || C == ']') {
      ASSERT_GT(Depth, 0);
      --Depth;
    }
  }
  EXPECT_EQ(Depth, 0);
  EXPECT_FALSE(InString);
  EXPECT_EQ(Quotes % 2, 0u);

  // Every finding appears with its kind and line; one object per finding.
  size_t KindCount = 0;
  for (size_t Pos = Json.find("\"kind\":"); Pos != std::string::npos;
       Pos = Json.find("\"kind\":", Pos + 1))
    ++KindCount;
  EXPECT_EQ(KindCount, Fs.size());
  EXPECT_NE(Json.find("\"file\":\"lint_seeded.c\""), std::string::npos);
  for (const LintFinding &F : Fs) {
    EXPECT_NE(Json.find(std::string("\"kind\":\"") + lintKindName(F.Kind) +
                        "\""),
              std::string::npos)
        << lintKindName(F.Kind);
    EXPECT_NE(Json.find("\"line\":" + std::to_string(F.Loc.Line)),
              std::string::npos)
        << F.Loc.Line;
  }
}

TEST(Lint, JsonEscapesHostileStringsPerRfc8259) {
  // Quotes, backslashes, newlines, tabs, raw control bytes, and non-ASCII
  // bytes must all leave lintFindingsToJson as escape sequences — the
  // output has to stay parseable (and ASCII-clean) no matter what ends up
  // in a message or identifier.
  LintFinding F;
  F.Kind = LintKind::DeadStore;
  F.Function = "fn\"quoted\\name";
  F.Loc.Line = 3;
  F.Message = std::string("quote \" backslash \\ newline \n tab \t "
                          "carriage \r ctrl ") +
              '\x02' + " high " + '\xc3' + '\xa9';
  std::string Json = lintFindingsToJson("dir/weird \"name\"\n.c", {F});

  auto Has = [&](const char *Needle) {
    EXPECT_NE(Json.find(Needle), std::string::npos) << Needle << "\n" << Json;
  };
  Has("\\\"name\\\"");   // quotes in the file name
  Has("fn\\\"quoted\\\\name");
  Has("quote \\\" backslash \\\\ newline \\n tab \\t carriage \\r");
  Has("\\u0002");        // raw control byte
  Has("\\u00c3");        // each non-ASCII byte escaped individually
  Has("\\u00a9");

  // Nothing outside printable ASCII survives, and every remaining quote
  // is structural (preceded by an even run of backslashes).
  for (size_t I = 0; I < Json.size(); ++I) {
    unsigned char C = Json[I];
    EXPECT_GE(C, 0x20u) << "raw control byte at offset " << I;
    EXPECT_LT(C, 0x7fu) << "raw non-ASCII byte at offset " << I;
  }
}

//===----------------------------------------------------------------------===//
// Dependence and slicing
//===----------------------------------------------------------------------===//

namespace {

/// The id of the Param source named \p Name, or ~0u.
unsigned sourceIdOf(const DependenceResult &Dep, const std::string &Name) {
  for (unsigned I = 0; I < Dep.Sources.size(); ++I)
    if (Dep.Sources[I].Name == Name)
      return I;
  return ~0u;
}

/// Module-order site ids of every CondJump in \p Fn.
std::vector<unsigned> siteIdsOf(const IRFunction &F) {
  std::vector<unsigned> Ids;
  for (const auto &I : F.Instrs)
    if (const auto *CJ = dyn_cast<CondJumpInstr>(I.get()))
      Ids.push_back(CJ->siteId());
  return Ids;
}

} // namespace

TEST(Dependence, DisjointInputGroupsStayDisjoint) {
  auto D = compile(R"(
    int f(int a, int b) {
      int r = 0;
      if (a > 3)
        r = r + 1;
      if (b > 4)
        r = r + 2;
      return r;
    }
  )");
  DependenceResult Dep = runDependenceAnalysis(D->module(), "f");
  unsigned A = sourceIdOf(Dep, "f:param0"), B = sourceIdOf(Dep, "f:param1");
  ASSERT_NE(A, ~0u);
  ASSERT_NE(B, ~0u);
  std::vector<unsigned> Sites =
      siteIdsOf(*D->module().findFunction("f"));
  ASSERT_EQ(Sites.size(), 2u);
  EXPECT_TRUE(Dep.SiteDataInputs[Sites[0]].test(A));
  EXPECT_FALSE(Dep.SiteDataInputs[Sites[0]].test(B));
  EXPECT_TRUE(Dep.SiteDataInputs[Sites[1]].test(B));
  EXPECT_FALSE(Dep.SiteDataInputs[Sites[1]].test(A));
  // Both inputs influence a branch, so neither is dead.
  EXPECT_TRUE(Dep.UsedSources.test(A));
  EXPECT_TRUE(Dep.UsedSources.test(B));
}

TEST(Dependence, ImplicitFlowsReachConditionallyWrittenState) {
  // g's *value* is decided by x even though no data flows from x into
  // either store — the classic implicit flow. The site testing g must
  // report x among its data inputs.
  auto D = compile(R"(
    int g = 0;
    int h(int x) {
      g = 0;
      if (x > 0)
        g = 1;
      if (g == 1)
        return 1;
      return 0;
    }
  )");
  DependenceResult Dep = runDependenceAnalysis(D->module(), "h");
  unsigned X = sourceIdOf(Dep, "h:param0");
  ASSERT_NE(X, ~0u);
  std::vector<unsigned> Sites = siteIdsOf(*D->module().findFunction("h"));
  ASSERT_EQ(Sites.size(), 2u);
  EXPECT_TRUE(Dep.SiteDataInputs[Sites[1]].test(X))
      << "the branch on g must inherit x through the implicit flow";
}

TEST(Dependence, NestedSitesInheritControlContext) {
  // The inner site's condition mentions only b, but whether it executes
  // at all is decided by a — its *relevant* set carries both.
  auto D = compile(R"(
    int f(int a, int b) {
      if (a > 0) {
        if (b > 0)
          return 2;
        return 1;
      }
      return 0;
    }
  )");
  DependenceResult Dep = runDependenceAnalysis(D->module(), "f");
  unsigned A = sourceIdOf(Dep, "f:param0"), B = sourceIdOf(Dep, "f:param1");
  std::vector<unsigned> Sites = siteIdsOf(*D->module().findFunction("f"));
  ASSERT_EQ(Sites.size(), 2u);
  EXPECT_FALSE(Dep.SiteDataInputs[Sites[1]].test(A));
  EXPECT_TRUE(Dep.SiteRelevant[Sites[1]].test(A));
  EXPECT_TRUE(Dep.SiteRelevant[Sites[1]].test(B));
  // The outer site executes unconditionally: data-only relevance.
  EXPECT_FALSE(Dep.SiteRelevant[Sites[0]].test(B));
}

TEST(Slice, BackwardSliceKeepsTheChainDropsTheUnrelated) {
  auto D = compile(R"(
    int a_g = 0;
    int b_g = 0;
    int f(int x, int y) {
      int r;
      a_g = x + 1;
      b_g = y + 2;
      r = a_g * 3;
      return r;
    }
  )");
  const IRModule &M = D->module();
  DependenceResult Dep = runDependenceAnalysis(M, "f");
  unsigned Fn = 0;
  for (unsigned I = 0; I < M.functions().size(); ++I)
    if (M.functions()[I]->Name == "f")
      Fn = I;
  const IRFunction &F = *M.functions()[Fn];
  // The criterion: the first Ret (the trailing synthetic `ret 0` is dead).
  unsigned RetIdx = ~0u, StoreA = ~0u, StoreB = ~0u;
  for (unsigned I = 0; I < F.Instrs.size(); ++I) {
    if (isa<RetInstr>(F.Instrs[I].get()) && RetIdx == ~0u)
      RetIdx = I;
    if (const auto *St = dyn_cast<StoreInstr>(F.Instrs[I].get()))
      if (const auto *GA = dyn_cast<GlobalAddrExpr>(St->address())) {
        if (M.globals()[GA->globalIndex()].Name == "a_g")
          StoreA = I;
        if (M.globals()[GA->globalIndex()].Name == "b_g")
          StoreB = I;
      }
  }
  ASSERT_NE(RetIdx, ~0u);
  ASSERT_NE(StoreA, ~0u);
  ASSERT_NE(StoreB, ~0u);
  SliceResult S = computeBackwardSlice(M, Dep, {Fn, RetIdx});
  EXPECT_TRUE(S.contains(Fn, RetIdx)) << "criterion is in its own slice";
  EXPECT_TRUE(S.contains(Fn, StoreA)) << "a_g feeds the return";
  EXPECT_FALSE(S.contains(Fn, StoreB)) << "b_g cannot reach the return";
  EXPECT_GE(S.size(), 2u);
}

TEST(Slice, BackwardSliceIncludesControllingBranches) {
  auto D = compile(R"(
    int f(int x, int y) {
      int r;
      r = 0;
      if (x > 0)
        r = 1;
      return r;
    }
  )");
  const IRModule &M = D->module();
  DependenceResult Dep = runDependenceAnalysis(M, "f");
  unsigned Fn = 0;
  for (unsigned I = 0; I < M.functions().size(); ++I)
    if (M.functions()[I]->Name == "f")
      Fn = I;
  const IRFunction &F = *M.functions()[Fn];
  unsigned RetIdx = ~0u, CondIdx = ~0u;
  for (unsigned I = 0; I < F.Instrs.size(); ++I) {
    if (isa<RetInstr>(F.Instrs[I].get()) && RetIdx == ~0u)
      RetIdx = I;
    if (isa<CondJumpInstr>(F.Instrs[I].get()))
      CondIdx = I;
  }
  ASSERT_NE(RetIdx, ~0u);
  ASSERT_NE(CondIdx, ~0u);
  SliceResult S = computeBackwardSlice(M, Dep, {Fn, RetIdx});
  EXPECT_TRUE(S.contains(Fn, CondIdx))
      << "the branch deciding which store reaches the return is in the "
         "slice";
}

TEST(Lint, DeadInputIsReportedAndTrappingUsesSuppressIt) {
  // y influences nothing: reported. In the second program y's only use is
  // as a divisor — a potentially-trapping operation is a bug site, so y
  // is *not* dead (DART can drive it to 0).
  {
    auto D = compile(R"(
      int f(int x, int y) {
        if (x > 0)
          return 1;
        return 0;
      }
    )");
    std::vector<LintFinding> Fs = runLintAnalysis(D->module(), "f");
    ASSERT_EQ(Fs.size(), 1u)
        << (Fs.empty() ? "no findings" : Fs.front().Message);
    EXPECT_EQ(Fs[0].Kind, LintKind::DeadInput);
    EXPECT_NE(Fs[0].Message.find("'y'"), std::string::npos) << Fs[0].Message;
    // Without a toplevel the input lints don't run at all.
    EXPECT_TRUE(runLintAnalysis(D->module()).empty());
  }
  {
    auto D = compile(R"(
      int f(int x, int y) {
        int z;
        z = 100 / y;
        if (x > 0)
          return z;
        return 0;
      }
    )");
    for (const LintFinding &F : runLintAnalysis(D->module(), "f"))
      EXPECT_NE(F.Kind, LintKind::DeadInput) << F.Message;
  }
}

TEST(Lint, WriteOnlyGlobalIsReportedReadableOnesAreNot) {
  auto D = compile(R"(
    int sink = 0;
    int counted = 0;
    int bump(int v) {
      sink = v;
      counted = counted + 1;
      return counted;
    }
  )");
  std::vector<LintFinding> Fs = runLintAnalysis(D->module());
  ASSERT_EQ(Fs.size(), 1u);
  EXPECT_EQ(Fs[0].Kind, LintKind::WriteOnlyVariable);
  EXPECT_NE(Fs[0].Message.find("'sink'"), std::string::npos) << Fs[0].Message;
}

TEST(Lint, ControlUnreachableBugNeedsInputIndependentGuards) {
  // The first abort is guarded only by a constant-valued global: no input
  // choice affects whether it executes. The second is input-guarded and
  // must not be reported.
  auto D = compile(R"(
    int flag = 0;
    int f(int x) {
      if (flag == 1)
        abort();
      if (x == 42)
        abort();
      return 0;
    }
  )");
  std::vector<LintFinding> Fs = runLintAnalysis(D->module(), "f");
  unsigned CtrlUnreachable = 0;
  for (const LintFinding &F : Fs)
    if (F.Kind == LintKind::ControlUnreachableBug) {
      ++CtrlUnreachable;
      EXPECT_NE(F.Message.find("input-independent"), std::string::npos);
    }
  EXPECT_EQ(CtrlUnreachable, 1u);
}

TEST(Lint, DependenceLintsStayCleanOnWorkloadToplevels) {
  // The zero-false-positive discipline, now with the dependence lints
  // armed: every §4 workload entry point the suite searches from must
  // stay finding-free (minus the findings already pinned above).
  struct Entry {
    const char *Name;
    std::string Source;
    const char *Toplevel;
  };
  std::vector<Entry> Entries = {
      {"ac_controller", workloads::acControllerSource(), "ac_controller"},
      {"minisip_receive", workloads::miniSipSource(), "sip_receive"},
      {"minisip_get_host", workloads::miniSipSource(), "sip_uri_get_host"},
  };
  for (const Entry &E : Entries) {
    auto D = compile(E.Source);
    for (const LintFinding &F : runLintAnalysis(D->module(), E.Toplevel))
      ADD_FAILURE() << E.Name << " --toplevel " << E.Toplevel << ": "
                    << lintKindName(F.Kind) << " at line " << F.Loc.Line
                    << ": " << F.Message;
  }
  // needham_schroeder carries exactly two genuine findings with the
  // dependence lints armed: the pinned write-only global, and — a real
  // catch — the unfixed protocol model never reads the d3 identity field
  // (that's the whole point of Lowe's fix, which adds the comparison).
  auto D = compile(workloads::needhamSchroederSource({}));
  std::vector<LintFinding> Fs = runLintAnalysis(D->module(), "ns_step");
  ASSERT_EQ(Fs.size(), 2u);
  EXPECT_EQ(Fs[0].Kind, LintKind::WriteOnlyVariable);
  EXPECT_EQ(Fs[1].Kind, LintKind::DeadInput);
  EXPECT_NE(Fs[1].Message.find("'d3'"), std::string::npos) << Fs[1].Message;
  // With Lowe's fix applied, d3 is compared against the expected peer and
  // the dead-input finding must disappear.
  auto DF = compile(workloads::needhamSchroederSource(
      {.Fix = workloads::LoweFix::Full}));
  for (const LintFinding &F : runLintAnalysis(DF->module(), "ns_step"))
    EXPECT_NE(F.Kind, LintKind::DeadInput) << F.Message;
}

//===----------------------------------------------------------------------===//
// Distance strategy
//===----------------------------------------------------------------------===//

TEST(DistanceStrategy, MatchesDfsCoverageSequentialAndParallel) {
  // The distance order is a heuristic over the same candidate set: it may
  // reorder the exploration but must land on the same final coverage and
  // the same (empty) bug set on a bounded, fully explorable workload.
  auto RunWith = [&](SearchStrategy Strategy, unsigned Jobs) {
    auto D = compile(workloads::acControllerSource());
    DartOptions Opts;
    Opts.ToplevelName = "ac_controller";
    Opts.Depth = 1;
    Opts.Seed = 2005;
    Opts.MaxRuns = 500;
    Opts.Jobs = Jobs;
    Opts.Strategy = Strategy;
    return D->run(Opts);
  };
  for (unsigned Jobs : {1u, 4u}) {
    DartReport Dfs = RunWith(SearchStrategy::DepthFirst, Jobs);
    DartReport Dist = RunWith(SearchStrategy::Distance, Jobs);
    EXPECT_EQ(Dist.BranchDirectionsCovered, Dfs.BranchDirectionsCovered)
        << "jobs " << Jobs;
    EXPECT_EQ(Dist.BugFound, Dfs.BugFound) << "jobs " << Jobs;
  }
}

//===----------------------------------------------------------------------===//
// End to end: StaticPrune only removes solver traffic
//===----------------------------------------------------------------------===//

const char *FiltersSource = R"(
  int version = 2;
  int debug = 0;
  int window = 16;
  int narrow(char tag) {
    if (tag < 300) {
      return tag + 1;
    }
    return 0;
  }
  int route(char tag, int len) {
    int acc;
    acc = 0;
    if (version != 2) {
      acc = -1;
    }
    if (debug == 1) {
      acc = acc - 1;
    }
    if (window >= 8) {
      acc = acc + 1;
    }
    if (tag < 300) {
      acc = acc + narrow(tag);
    }
    if (len == 42) {
      acc = acc + 2;
    }
    if (len > 100) {
      if (tag == 7) {
        acc = acc + 3;
      }
    }
    return acc;
  }
)";

struct Scenario {
  const char *Name;
  std::string Source;
  std::string Toplevel;
  unsigned Depth;
  uint64_t Seed;
  unsigned MaxRuns;
};

std::vector<Scenario> scenarios() {
  const char *IntroExample = R"(
    int f(int x) { return 2 * x; }
    int h(int x, int y) {
      if (x != y)
        if (f(x) == x + 10)
          abort();
      return 0;
    }
  )";
  workloads::NsConfig Ns;
  Ns.DolevYao = false;
  Ns.Fix = workloads::LoweFix::None;
  return {
      {"filters", FiltersSource, "route", 1, 2005, 500},
      {"intro", IntroExample, "h", 1, 42, 200},
      {"ac_controller", workloads::acControllerSource(), "ac_controller", 2,
       2005, 2000},
      {"needham_schroeder", workloads::needhamSchroederSource(Ns), "ns_step",
       2, 7, 1500},
      {"minisip_get_host", workloads::miniSipSource(), "sip_uri_get_host", 1,
       11, 300},
      {"minisip_receive", workloads::miniSipSource(), "sip_receive", 1, 11,
       300},
      {"alias_pick_one", readFixture("alias_lint.c"), "pick_one", 1, 2005,
       300},
      {"alias_swap", readFixture("alias_lint.c"), "swap_if_greater", 1, 2005,
       300},
  };
}

DartReport runPruned(const Scenario &S, bool Prune, unsigned Jobs) {
  auto D = compile(S.Source);
  DartOptions Opts;
  Opts.ToplevelName = S.Toplevel;
  Opts.Depth = S.Depth;
  Opts.Seed = S.Seed;
  Opts.MaxRuns = S.MaxRuns;
  Opts.Jobs = Jobs;
  Opts.StopAtFirstError = false;
  Opts.StaticPrune = Prune;
  return D->run(Opts);
}

std::vector<std::string> bugList(const DartReport &R, bool WithRunNumbers) {
  std::vector<std::string> Out;
  for (const BugInfo &B : R.Bugs) {
    if (WithRunNumbers) {
      Out.push_back(B.toString());
      continue;
    }
    std::string Sig = B.Error.toString();
    for (const auto &[InputName, Value] : B.Inputs)
      Sig += " " + InputName + "=" + std::to_string(Value);
    Out.push_back(std::move(Sig));
  }
  return Out;
}

/// Everything except SolverCalls must match: pruning may only shrink
/// solver traffic, never the observable search.
void expectSameSearch(const DartReport &On, const DartReport &Off,
                      const char *Name, bool WithRunNumbers) {
  EXPECT_EQ(On.Runs, Off.Runs) << Name;
  EXPECT_EQ(On.Restarts, Off.Restarts) << Name;
  EXPECT_EQ(On.ForcingMismatches, Off.ForcingMismatches) << Name;
  EXPECT_EQ(On.BugFound, Off.BugFound) << Name;
  EXPECT_EQ(bugList(On, WithRunNumbers), bugList(Off, WithRunNumbers))
      << Name;
  EXPECT_EQ(On.CompleteExploration, Off.CompleteExploration) << Name;
  EXPECT_EQ(On.BranchDirectionsCovered, Off.BranchDirectionsCovered) << Name;
  EXPECT_EQ(On.Coverage, Off.Coverage) << Name << ": coverage bitmap";
  EXPECT_LE(On.SolverCalls, Off.SolverCalls) << Name;
}

TEST(StaticPruneDiff, SequentialSearchIdenticalModuloSolverCalls) {
  uint64_t Saved = 0;
  for (const Scenario &S : scenarios()) {
    DartReport On = runPruned(S, /*Prune=*/true, /*Jobs=*/1);
    DartReport Off = runPruned(S, /*Prune=*/false, /*Jobs=*/1);
    expectSameSearch(On, Off, S.Name, /*WithRunNumbers=*/true);
    Saved += Off.SolverCalls - On.SolverCalls;
  }
  EXPECT_GT(Saved, 0u) << "pruning never saved a solver call";
}

TEST(StaticPruneDiff, ParallelSearchIdenticalModuloSolverCalls) {
  for (const Scenario &S : scenarios()) {
    DartReport On = runPruned(S, /*Prune=*/true, /*Jobs=*/4);
    DartReport Off = runPruned(S, /*Prune=*/false, /*Jobs=*/4);
    expectSameSearch(On, Off, S.Name, /*WithRunNumbers=*/false);
  }
}

TEST(StaticPruneDiff, FiltersWorkloadPrunesMostGuards) {
  auto D = compile(FiltersSource);
  StaticSummary Sum = computeStaticSummary(D->module(), "route");
  // Three config gates plus the narrow range check; the two len/tag
  // branches and narrow()'s internal check stay live.
  EXPECT_GE(Sum.prunedCount(), 4u) << Sum.toString();
  EXPECT_LT(Sum.prunedCount(), Sum.NumBranchSites) << Sum.toString();
}

} // namespace
