//===- switch_test.cpp - Tests for MiniC switch statements -----------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "interp/Interp.h"
#include "ir/Lowering.h"

#include <gtest/gtest.h>

using namespace dart;
using namespace dart::test;

namespace {

int64_t evalTo(std::string_view Source, const std::string &Fn,
               std::vector<int64_t> Args = {}) {
  DiagnosticsEngine Diags;
  auto TU = parseAndCheck(Source, Diags);
  EXPECT_NE(TU, nullptr) << Diags.toString();
  if (!TU)
    return INT64_MIN;
  LoweredProgram P = lowerToIR(*TU, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.toString();
  Interp VM(*P.Module);
  RunResult R = VM.callFunction(Fn, Args);
  EXPECT_EQ(R.Status, RunStatus::Halted) << R.Error.toString();
  return R.ReturnValue;
}

const char *Classifier = R"(
  int classify(int x) {
    switch (x) {
    case 0:
      return 100;
    case 1:
    case 2:
      return 200;
    case -3:
      return 300;
    default:
      return -1;
    }
  }
)";

} // namespace

TEST(SwitchStmt, BasicDispatch) {
  EXPECT_EQ(evalTo(Classifier, "classify", {0}), 100);
  EXPECT_EQ(evalTo(Classifier, "classify", {1}), 200);
  EXPECT_EQ(evalTo(Classifier, "classify", {2}), 200)
      << "adjacent labels fall through";
  EXPECT_EQ(evalTo(Classifier, "classify", {-3}), 300);
  EXPECT_EQ(evalTo(Classifier, "classify", {42}), -1);
}

TEST(SwitchStmt, FallthroughAccumulates) {
  const char *Source = R"(
    int f(int x) {
      int acc = 0;
      switch (x) {
      case 3:
        acc += 100;
      case 2:
        acc += 10;
      case 1:
        acc += 1;
      }
      return acc;
    }
  )";
  EXPECT_EQ(evalTo(Source, "f", {3}), 111);
  EXPECT_EQ(evalTo(Source, "f", {2}), 11);
  EXPECT_EQ(evalTo(Source, "f", {1}), 1);
  EXPECT_EQ(evalTo(Source, "f", {9}), 0) << "no default: falls past";
}

TEST(SwitchStmt, BreakLeavesSwitchOnly) {
  const char *Source = R"(
    int f(int n) {
      int total = 0;
      for (int i = 0; i < n; i++) {
        switch (i % 3) {
        case 0:
          total += 1;
          break;
        case 1:
          total += 10;
          break;
        default:
          total += 100;
          break;
        }
      }
      return total;
    }
  )";
  EXPECT_EQ(evalTo(Source, "f", {6}), 222);
}

TEST(SwitchStmt, DefaultAnywhere) {
  const char *Source = R"(
    int f(int x) {
      switch (x) {
      default:
        return -1;
      case 5:
        return 5;
      }
    }
  )";
  EXPECT_EQ(evalTo(Source, "f", {5}), 5);
  EXPECT_EQ(evalTo(Source, "f", {6}), -1);
}

TEST(SwitchStmt, CharAndLongScrutinees) {
  const char *Source = R"(
    int f(char c) {
      switch (c) {
      case 'a':
        return 1;
      case 'z':
        return 26;
      }
      return 0;
    }
  )";
  EXPECT_EQ(evalTo(Source, "f", {'a'}), 1);
  EXPECT_EQ(evalTo(Source, "f", {'z'}), 26);
  EXPECT_EQ(evalTo(Source, "f", {'m'}), 0);
}

TEST(SwitchStmt, SideEffectingScrutineeEvaluatedOnce) {
  const char *Source = R"(
    int calls = 0;
    int next(void) { calls += 1; return calls; }
    int f(void) {
      switch (next()) {
      case 1:
        break;
      case 2:
        return -1;
      }
      return calls;
    }
  )";
  EXPECT_EQ(evalTo(Source, "f"), 1);
}

TEST(SwitchStmt, SemaRejectsDuplicateCases) {
  checkFails("int f(int x) { switch (x) { case 1: return 1; case 1: return 2; } return 0; }");
}

TEST(SwitchStmt, SemaRejectsMultipleDefaults) {
  checkFails("int f(int x) { switch (x) { default: return 1; default: return 2; } return 0; }");
}

TEST(SwitchStmt, SemaRejectsNonIntegerScrutinee) {
  checkFails("int f(int *p) { switch (p) { case 0: return 1; } return 0; }");
}

TEST(SwitchStmt, SemaRejectsNonConstantLabel) {
  checkFails("int f(int x, int y) { switch (x) { case y: return 1; } return 0; }");
}

TEST(SwitchStmt, EachCaseIsABranchSite) {
  DiagnosticsEngine Diags;
  auto TU = parseAndCheck(Classifier, Diags);
  ASSERT_NE(TU, nullptr);
  LoweredProgram P = lowerToIR(*TU, Diags);
  // 4 value labels (0, 1, 2, -3) -> 4 conditional statements.
  EXPECT_EQ(P.Module->numBranchSites(), 4u);
}

TEST(SwitchStmt, DartSteersIntoEveryArm) {
  // The directed search must reach all arms — including the guarded abort —
  // exactly like an if-chain.
  const char *Source = R"(
    void dispatch(int cmd, int arg) {
      switch (cmd) {
      case 10:
        return;
      case 20:
        if (arg == 777)
          abort();
        return;
      case 30:
        return;
      }
    }
  )";
  DartReport R = runDart(Source, "dispatch");
  ASSERT_TRUE(R.BugFound);
  EXPECT_LE(R.Runs, 10u);
  std::map<std::string, int64_t> In(R.Bugs[0].Inputs.begin(),
                                    R.Bugs[0].Inputs.end());
  EXPECT_EQ(In["dispatch#0.cmd"], 20);
  EXPECT_EQ(In["dispatch#0.arg"], 777);
}

TEST(SwitchStmt, CompleteExplorationThroughSwitch) {
  const char *Source = R"(
    int f(int x) {
      switch (x) {
      case 1:
        return 10;
      case 2:
        return 20;
      default:
        return 0;
      }
    }
  )";
  DartReport R = runDart(Source, "f");
  EXPECT_FALSE(R.BugFound);
  EXPECT_TRUE(R.CompleteExploration);
  EXPECT_EQ(R.BranchDirectionsCovered, 2 * R.BranchSitesTotal);
}
