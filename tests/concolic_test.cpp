//===- concolic_test.cpp - Unit tests for src/concolic ----------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// These tests exercise the symbolic shadow execution directly: they compile
// small programs, install a ConcolicRun with hand-seeded inputs, execute,
// and inspect the collected path constraints and completeness flags.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "concolic/Concolic.h"
#include "concolic/PathSearch.h"
#include "ir/Lowering.h"

#include <gtest/gtest.h>

using namespace dart;
using namespace dart::test;

namespace {

/// Harness: compiles Source, calls Fn with integer args bound as inputs
/// x0..xn-1, and returns the concolic run data.
struct ConcolicHarness {
  std::unique_ptr<TranslationUnit> TU;
  LoweredProgram Program;
  std::vector<InputInfo> Inputs;
  PredArena Arena;
  std::unique_ptr<ConcolicRun> Hooks;
  std::unique_ptr<Interp> VM;
  RunResult Result;

  /// The interned predicate behind a PathData constraint id.
  const SymPred &pred(PredId Id) const { return Arena.pred(Id); }

  void run(std::string_view Source, const std::string &Fn,
           const std::vector<int64_t> &Args,
           std::vector<BranchRecord> Predicted = {},
           ConcolicOptions Options = {}) {
    DiagnosticsEngine Diags;
    TU = parseAndCheck(Source, Diags);
    ASSERT_NE(TU, nullptr) << Diags.toString();
    Program = lowerToIR(*TU, Diags);
    ASSERT_FALSE(Diags.hasErrors());
    for (size_t I = 0; I < Args.size(); ++I)
      Inputs.push_back(
          InputInfo{InputKind::Integer, ValType::int32(),
                    "x" + std::to_string(I)});
    Hooks = std::make_unique<ConcolicRun>(Inputs, Arena,
                                          std::move(Predicted), Options);
    VM = std::make_unique<Interp>(*Program.Module);
    VM->setHooks(Hooks.get());
    auto *ParamAddrs = VM->beginCall(Fn, Args);
    ASSERT_NE(ParamAddrs, nullptr);
    for (size_t I = 0; I < Args.size(); ++I)
      Hooks->bindInput((*ParamAddrs)[I], ValType::int32(),
                       static_cast<InputId>(I));
    Result = VM->finishCall();
  }
};

} // namespace

TEST(Concolic, CollectsEqualityConstraint) {
  ConcolicHarness H;
  H.run("int f(int x) { if (x == 10) return 1; return 0; }", "f", {3});
  ASSERT_EQ(H.Result.Status, RunStatus::Halted);
  PathData P = H.Hooks->takePath();
  ASSERT_EQ(P.Stack.size(), 1u);
  EXPECT_FALSE(P.Stack[0].Branch) << "x=3 takes the else branch";
  ASSERT_NE(P.Constraints[0], kNoPred);
  // Not taken: constraint is the negation, x - 10 != 0.
  EXPECT_EQ(H.pred(P.Constraints[0]).Pred, CmpPred::Ne);
  EXPECT_EQ(H.pred(P.Constraints[0]).LHS.coeff(0), 1);
  EXPECT_EQ(H.pred(P.Constraints[0]).LHS.constant(), -10);
  EXPECT_TRUE(H.Hooks->flags().allSet());
}

TEST(Concolic, InterproceduralTracing) {
  // The paper's §2.1: f(x) = 2*x traced through the call, giving the
  // constraint 2*x0 - x0 - 10 = x0 - 10 at the inner conditional.
  ConcolicHarness H;
  H.run(R"(
    int f(int x) { return 2 * x; }
    int h(int x, int y) {
      if (x != y)
        if (f(x) == x + 10)
          abort();
      return 0;
    }
  )",
        "h", {269167349, 889801541});
  ASSERT_EQ(H.Result.Status, RunStatus::Halted);
  PathData P = H.Hooks->takePath();
  ASSERT_EQ(P.Stack.size(), 2u);
  EXPECT_TRUE(P.Stack[0].Branch);
  EXPECT_FALSE(P.Stack[1].Branch);
  ASSERT_NE(P.Constraints[1], kNoPred);
  // 2*x0 != x0 + 10  ->  x0 - 10 != 0.
  EXPECT_EQ(H.pred(P.Constraints[1]).Pred, CmpPred::Ne);
  EXPECT_EQ(H.pred(P.Constraints[1]).LHS.coeff(0), 1);
  EXPECT_EQ(H.pred(P.Constraints[1]).LHS.constant(), -10);
  EXPECT_TRUE(H.Hooks->flags().allSet());
}

TEST(Concolic, AssignmentsPropagateSymbolically) {
  // The paper's §2.4: z = y; if (x == z) ... constraint is x0 - y0 == 0.
  ConcolicHarness H;
  H.run(R"(
    int f(int x, int y) {
      int z;
      z = y;
      if (x == z)
        if (y == x + 10)
          abort();
      return 0;
    }
  )",
        "f", {123456, 654321});
  PathData P = H.Hooks->takePath();
  ASSERT_EQ(P.Stack.size(), 1u);
  ASSERT_NE(P.Constraints[0], kNoPred);
  EXPECT_EQ(H.pred(P.Constraints[0]).Pred, CmpPred::Ne); // else taken
  EXPECT_EQ(H.pred(P.Constraints[0]).LHS.coeff(0), 1);
  EXPECT_EQ(H.pred(P.Constraints[0]).LHS.coeff(1), -1);
}

TEST(Concolic, NonlinearMultiplicationClearsAllLinear) {
  ConcolicHarness H;
  H.run("int f(int x, int y) { if (x * y == 12) return 1; return 0; }", "f",
        {3, 5});
  PathData P = H.Hooks->takePath();
  ASSERT_EQ(P.Stack.size(), 1u);
  // In literal Fig. 3 mode the out-of-theory condition contributes its
  // concrete truth value: a constant (unflippable) predicate.
  ASSERT_NE(P.Constraints[0], kNoPred);
  EXPECT_TRUE(H.pred(P.Constraints[0]).isConstant())
      << "x*y is outside the linear theory";
  EXPECT_FALSE(H.Hooks->flags().AllLinear);
  EXPECT_TRUE(H.Hooks->flags().AllLocsDefinite);
}

TEST(Concolic, LinearMultiplicationByConstantKept) {
  ConcolicHarness H;
  H.run("int f(int x) { if (3 * x == 12) return 1; return 0; }", "f", {4});
  PathData P = H.Hooks->takePath();
  ASSERT_NE(P.Constraints[0], kNoPred);
  EXPECT_EQ(H.pred(P.Constraints[0]).Pred, CmpPred::Eq) << "taken at x=4";
  EXPECT_EQ(H.pred(P.Constraints[0]).LHS.coeff(0), 3);
  EXPECT_TRUE(H.Hooks->flags().allSet());
}

TEST(Concolic, DivisionFallsBack) {
  ConcolicHarness H;
  H.run("int f(int x) { if (x / 2 == 3) return 1; return 0; }", "f", {6});
  PathData P = H.Hooks->takePath();
  ASSERT_NE(P.Constraints[0], kNoPred);
  EXPECT_TRUE(H.pred(P.Constraints[0]).isConstant());
  EXPECT_FALSE(H.Hooks->flags().AllLinear);
}

TEST(Concolic, ShiftByConstantIsLinear) {
  ConcolicHarness H;
  H.run("int f(int x) { if ((x << 2) == 20) return 1; return 0; }", "f",
        {5});
  PathData P = H.Hooks->takePath();
  ASSERT_NE(P.Constraints[0], kNoPred);
  EXPECT_EQ(H.pred(P.Constraints[0]).LHS.coeff(0), 4);
  EXPECT_TRUE(H.Hooks->flags().AllLinear);
}

TEST(Concolic, BitwiseOpsFallBack) {
  ConcolicHarness H;
  H.run("int f(int x) { if ((x & 7) == 3) return 1; return 0; }", "f", {3});
  EXPECT_FALSE(H.Hooks->flags().AllLinear);
}

TEST(Concolic, StoredComparisonReducesAtBranch) {
  // flag = (x < 5); if (flag) ... : the branch constraint is x < 5 itself.
  ConcolicHarness H;
  H.run(R"(
    int f(int x) {
      int flag = (x < 5);
      if (flag) return 1;
      return 0;
    }
  )",
        "f", {2});
  PathData P = H.Hooks->takePath();
  ASSERT_EQ(P.Stack.size(), 1u);
  ASSERT_NE(P.Constraints[0], kNoPred);
  EXPECT_EQ(H.pred(P.Constraints[0]).Pred, CmpPred::Lt);
  EXPECT_TRUE(H.Hooks->flags().allSet());
}

TEST(Concolic, SymbolicAddressingClearsAllLocsDefinite) {
  ConcolicHarness H;
  H.run(R"(
    int f(int i) {
      int a[4];
      a[0] = 0; a[1] = 10; a[2] = 20; a[3] = 30;
      if (a[i] == 20) return 1;
      return 0;
    }
  )",
        "f", {2});
  EXPECT_FALSE(H.Hooks->flags().AllLocsDefinite)
      << "input-dependent index = input-dependent address";
}

TEST(Concolic, NativeCallWithSymbolicArgClearsAllLinear) {
  ConcolicHarness H;
  H.run(R"(
    int f(int n) {
      char *p = (char *)malloc(n);
      if (p == NULL) return -1;
      free(p);
      return 0;
    }
  )",
        "f", {16});
  EXPECT_FALSE(H.Hooks->flags().AllLinear)
      << "malloc consumed a symbolic size";
}

TEST(Concolic, ForcingMismatchStopsRun) {
  // Predict that the first branch goes true, but feed an input that makes
  // it go false: compare_and_update_stack must raise (Fig. 4).
  ConcolicHarness H;
  std::vector<BranchRecord> Predicted = {{/*Branch=*/true, false, 0}};
  H.run("int f(int x) { if (x == 1) return 1; return 0; }", "f", {5},
        Predicted);
  EXPECT_EQ(H.Result.Status, RunStatus::ForcingMismatch);
  EXPECT_FALSE(H.Hooks->forcingOk());
}

TEST(Concolic, CorrectPredictionMarksDeepestDone) {
  ConcolicHarness H;
  std::vector<BranchRecord> Predicted = {{/*Branch=*/true, false, 0}};
  H.run("int f(int x) { if (x == 1) return 1; return 0; }", "f", {1},
        Predicted);
  EXPECT_EQ(H.Result.Status, RunStatus::Halted);
  PathData P = H.Hooks->takePath();
  ASSERT_EQ(P.Stack.size(), 1u);
  EXPECT_TRUE(P.Stack[0].Done) << "arrived as predicted: both sides known";
}

TEST(Concolic, StaleSymbolsScrubbedOnFramePop) {
  // g's local is symbolic while g runs; after g returns its frame dies and
  // the (recycled) cells must not leak stale symbols into f's branches.
  ConcolicHarness H;
  H.run(R"(
    int g(int v) { int local = v + 1; return local; }
    int f(int x) {
      int r = g(x);
      if (r == 7) return 1;
      return 0;
    }
  )",
        "f", {6});
  PathData P = H.Hooks->takePath();
  ASSERT_EQ(P.Stack.size(), 1u);
  ASSERT_NE(P.Constraints[0], kNoPred);
  // r = x + 1, so constraint mentions x0 with the right offset.
  EXPECT_EQ(H.pred(P.Constraints[0]).Pred, CmpPred::Eq);
  EXPECT_EQ(H.pred(P.Constraints[0]).LHS.coeff(0), 1);
  EXPECT_EQ(H.pred(P.Constraints[0]).LHS.constant(), -6);
}

TEST(Concolic, CoverageRecorded) {
  ConcolicHarness H;
  H.run("int f(int x) { if (x > 0) return 1; return 0; }", "f", {5});
  // Bit layout: 2*site + direction. x=5 takes the true direction of the
  // only site; the false direction stays uncovered.
  const std::vector<bool> &Bits = H.Hooks->coveredBits();
  EXPECT_EQ(H.Hooks->coveredCount(), 1u);
  ASSERT_GE(Bits.size(), 2u);
  EXPECT_FALSE(Bits[0]) << "false direction not covered";
  EXPECT_TRUE(Bits[1]) << "true direction covered";
}

//===----------------------------------------------------------------------===//
// solvePathConstraint (Fig. 5)
//===----------------------------------------------------------------------===//

namespace {

PathData makePath(PredArena &Arena,
                  std::vector<std::pair<bool, std::optional<SymPred>>> Steps) {
  PathData P;
  unsigned Site = 0;
  for (auto &[Branch, C] : Steps) {
    P.Stack.push_back({Branch, false, Site++});
    P.Constraints.push_back(C ? Arena.intern(*C) : kNoPred);
  }
  return P;
}

std::function<VarDomain(InputId)> intDomains() {
  return [](InputId) { return VarDomain{INT32_MIN, INT32_MAX}; };
}

} // namespace

TEST(PathSearch, FlipsDeepestUndoneBranch) {
  // Path: x != 10 (else), x < 100 (then). DFS flips the deepest: x >= 100
  // while preserving x != 10.
  auto C0 = SymPred(CmpPred::Ne,
                    *LinearExpr::variable(0).add(LinearExpr(-10)));
  auto C1 = SymPred(CmpPred::Lt,
                    *LinearExpr::variable(0).add(LinearExpr(-100)));
  PredArena A;
  PathData P = makePath(A, {{false, C0}, {true, C1}});
  LinearSolver Solver;
  Rng R(1);
  SolveOutcome O = solvePathConstraint(P, A, Solver, intDomains(), {{0, 3}},
                                       SearchStrategy::DepthFirst, R);
  ASSERT_TRUE(O.Found);
  EXPECT_EQ(O.FlippedIndex, 1u);
  ASSERT_EQ(O.NextStack.size(), 2u);
  EXPECT_FALSE(O.NextStack[1].Branch) << "flipped";
  EXPECT_GE(O.Model[0], 100);
  EXPECT_NE(O.Model[0], 10);
}

TEST(PathSearch, SkipsDoneBranches) {
  auto C0 = SymPred(CmpPred::Ne,
                    *LinearExpr::variable(0).add(LinearExpr(-10)));
  PredArena A;
  PathData P = makePath(A, {{false, C0}});
  P.Stack[0].Done = true;
  LinearSolver Solver;
  Rng R(1);
  SolveOutcome O = solvePathConstraint(P, A, Solver, intDomains(), {},
                                       SearchStrategy::DepthFirst, R);
  EXPECT_FALSE(O.Found) << "everything done: directed search over";
}

TEST(PathSearch, SkipsUnsatisfiableNegations) {
  // Branch 1's negation is unsat (x != x as x - x == 0 ... use constant
  // predicate); search must fall back to branch 0.
  auto C0 = SymPred(CmpPred::Ne,
                    *LinearExpr::variable(0).add(LinearExpr(-10)));
  auto C1 = SymPred(CmpPred::Ne, LinearExpr(1)); // always true; neg unsat
  PredArena A;
  PathData P = makePath(A, {{false, C0}, {true, C1}});
  LinearSolver Solver;
  Rng R(1);
  SolveOutcome O = solvePathConstraint(P, A, Solver, intDomains(), {},
                                       SearchStrategy::DepthFirst, R);
  ASSERT_TRUE(O.Found);
  EXPECT_EQ(O.FlippedIndex, 0u);
  EXPECT_EQ(O.NextStack.size(), 1u) << "stack truncated to the flip";
  EXPECT_EQ(O.Model[0], 10);
}

TEST(PathSearch, ConcreteBranchesHaveNothingToNegate) {
  PredArena A;
  PathData P = makePath(A, {{true, std::nullopt}, {false, std::nullopt}});
  LinearSolver Solver;
  Rng R(1);
  SolveOutcome O = solvePathConstraint(P, A, Solver, intDomains(), {},
                                       SearchStrategy::DepthFirst, R);
  EXPECT_FALSE(O.Found);
}

TEST(PathSearch, BreadthFirstPicksShallowest) {
  auto C0 = SymPred(CmpPred::Ne,
                    *LinearExpr::variable(0).add(LinearExpr(-10)));
  auto C1 = SymPred(CmpPred::Lt,
                    *LinearExpr::variable(1).add(LinearExpr(-5)));
  PredArena A;
  PathData P = makePath(A, {{false, C0}, {true, C1}});
  LinearSolver Solver;
  Rng R(1);
  SolveOutcome O = solvePathConstraint(P, A, Solver, intDomains(), {},
                                       SearchStrategy::BreadthFirst, R);
  ASSERT_TRUE(O.Found);
  EXPECT_EQ(O.FlippedIndex, 0u);
}

TEST(PathSearch, RandomStrategyFindsSomething) {
  auto C0 = SymPred(CmpPred::Ne,
                    *LinearExpr::variable(0).add(LinearExpr(-10)));
  auto C1 = SymPred(CmpPred::Lt,
                    *LinearExpr::variable(1).add(LinearExpr(-5)));
  PredArena A;
  PathData P = makePath(A, {{false, C0}, {true, C1}});
  LinearSolver Solver;
  Rng R(7);
  SolveOutcome O = solvePathConstraint(P, A, Solver, intDomains(), {},
                                       SearchStrategy::RandomBranch, R);
  EXPECT_TRUE(O.Found);
}

TEST(PathSearch, SolveCandidatesCollectsEveryFlip) {
  // Two independent flippable branches: the candidate set has both, in
  // DFS order (deepest first), each with its own prefix stack and model.
  auto C0 = SymPred(CmpPred::Ne,
                    *LinearExpr::variable(0).add(LinearExpr(-10)));
  auto C1 = SymPred(CmpPred::Lt,
                    *LinearExpr::variable(1).add(LinearExpr(-5)));
  PredArena A;
  PathData P = makePath(A, {{false, C0}, {true, C1}});
  LinearSolver Solver;
  Rng R(1);
  CandidateSet Set = solveCandidates(P, A, Solver, intDomains(), {},
                                     SearchStrategy::DepthFirst, R, 0);
  ASSERT_EQ(Set.Candidates.size(), 2u);
  EXPECT_FALSE(Set.Truncated);
  EXPECT_EQ(Set.Candidates[0].FlippedIndex, 1u) << "deepest first";
  EXPECT_EQ(Set.Candidates[0].NextStack.size(), 2u);
  EXPECT_GE(Set.Candidates[0].Model[1], 5);
  EXPECT_EQ(Set.Candidates[1].FlippedIndex, 0u);
  EXPECT_EQ(Set.Candidates[1].NextStack.size(), 1u);
  EXPECT_EQ(Set.Candidates[1].Model[0], 10);
}

TEST(PathSearch, SolveCandidatesSkipsUnsatAndDone) {
  auto C0 = SymPred(CmpPred::Ne,
                    *LinearExpr::variable(0).add(LinearExpr(-10)));
  auto C1 = SymPred(CmpPred::Ne, LinearExpr(1)); // negation unsat
  PredArena A;
  PathData P = makePath(A, {{false, C0}, {true, C1}});
  P.Stack[0].Done = true;
  LinearSolver Solver;
  Rng R(1);
  CandidateSet Set = solveCandidates(P, A, Solver, intDomains(), {},
                                     SearchStrategy::DepthFirst, R, 0);
  EXPECT_TRUE(Set.Candidates.empty());
  EXPECT_FALSE(Set.Truncated);
  EXPECT_EQ(Set.SolverCalls, 1u) << "only the unsat negation was queried";
}

TEST(PathSearch, SolveCandidatesHonoursCap) {
  auto C0 = SymPred(CmpPred::Ne,
                    *LinearExpr::variable(0).add(LinearExpr(-10)));
  auto C1 = SymPred(CmpPred::Lt,
                    *LinearExpr::variable(1).add(LinearExpr(-5)));
  PredArena A;
  PathData P = makePath(A, {{false, C0}, {true, C1}});
  LinearSolver Solver;
  Rng R(1);
  CandidateSet Set = solveCandidates(P, A, Solver, intDomains(), {},
                                     SearchStrategy::DepthFirst, R, 1);
  ASSERT_EQ(Set.Candidates.size(), 1u);
  EXPECT_EQ(Set.Candidates[0].FlippedIndex, 1u);
  EXPECT_TRUE(Set.Truncated) << "a flippable branch was left on the table";
}

TEST(PathSearch, SolveCandidatesRetriesDoomedHintModel) {
  // A branch recorded under wrapped 32-bit arithmetic: the stored
  // predicate (x0 + x1 <= 0) is ideally *false* under the run's own
  // inputs. The flip (x0 + x1 > 0) is then satisfied by the hint itself,
  // and a hint-anchored model would replay the old path into a forcing
  // mismatch. solveCandidates must retry hint-free and return a model
  // that actually changes an input.
  auto C0 = SymPred(CmpPred::Le,
                    *LinearExpr::variable(0).add(LinearExpr::variable(1)));
  PredArena A;
  PathData P = makePath(A, {{false, C0}});
  LinearSolver Solver;
  Rng R(1);
  std::map<InputId, int64_t> Hint{{0, 1967317072}, {1, -1889317073}};
  CandidateSet Set = solveCandidates(P, A, Solver, intDomains(), Hint,
                                     SearchStrategy::DepthFirst, R, 0);
  ASSERT_EQ(Set.Candidates.size(), 1u);
  EXPECT_FALSE(Set.TheoryMisled);
  EXPECT_EQ(Set.SolverCalls, 2u) << "hint-anchored solve plus the retry";
  const auto &M = Set.Candidates[0].Model;
  EXPECT_TRUE(M != Hint) << "the model must change some input";
  int64_t Sum = M.at(0) + M.at(1);
  EXPECT_GT(Sum, 0) << "flip realized";
  EXPECT_LE(Sum, INT32_MAX) << "and realizable without wrapping";
}

TEST(PathSearch, SolveCandidatesDropsFlipNoModelCanRealize) {
  // Flipping this branch demands x0 + x1 > 4294967000: ideally satisfiable
  // within the int32 domains, but every such sum leaves the int32 range
  // and would wrap in the VM. The flip must be dropped (TheoryMisled), not
  // handed to the engine as a doomed prediction.
  auto C0 = SymPred(CmpPred::Le,
                    *LinearExpr::variable(0)
                         .add(LinearExpr::variable(1))
                         ->add(LinearExpr(-4294967000)));
  PredArena A;
  PathData P = makePath(A, {{false, C0}});
  LinearSolver Solver;
  Rng R(1);
  CandidateSet Set = solveCandidates(P, A, Solver, intDomains(), {{0, 0}, {1, 0}},
                                     SearchStrategy::DepthFirst, R, 0);
  EXPECT_TRUE(Set.Candidates.empty());
  EXPECT_TRUE(Set.TheoryMisled);
  EXPECT_EQ(Set.SolverCalls, 2u);
}

TEST(PathSearch, SolvePathConstraintMatchesFirstCandidate) {
  // solvePathConstraint is solveCandidates with MaxCandidates == 1: same
  // pick, same model, same solver-call count.
  auto C0 = SymPred(CmpPred::Ne,
                    *LinearExpr::variable(0).add(LinearExpr(-10)));
  auto C1 = SymPred(CmpPred::Ne, LinearExpr(1)); // negation unsat
  PredArena A;
  PathData P = makePath(A, {{false, C0}, {true, C1}});
  LinearSolver S1, S2;
  Rng R1(1), R2(1);
  SolveOutcome Single = solvePathConstraint(P, A, S1, intDomains(), {},
                                            SearchStrategy::DepthFirst, R1);
  CandidateSet Set = solveCandidates(P, A, S2, intDomains(), {},
                                     SearchStrategy::DepthFirst, R2, 1);
  ASSERT_TRUE(Single.Found);
  ASSERT_EQ(Set.Candidates.size(), 1u);
  EXPECT_EQ(Single.FlippedIndex, Set.Candidates[0].FlippedIndex);
  EXPECT_EQ(Single.Model, Set.Candidates[0].Model);
  EXPECT_EQ(Single.SolverCalls, Set.SolverCalls);
}

TEST(PathSearch, StrategyNames) {
  EXPECT_STREQ(searchStrategyName(SearchStrategy::DepthFirst), "dfs");
  EXPECT_STREQ(searchStrategyName(SearchStrategy::BreadthFirst), "bfs");
  EXPECT_STREQ(searchStrategyName(SearchStrategy::RandomBranch), "random");
  EXPECT_STREQ(searchStrategyName(SearchStrategy::Distance), "distance");
  EXPECT_STREQ(searchStrategyName(SearchStrategy::Diversity), "diversity");
  EXPECT_STREQ(searchStrategyName(SearchStrategy::Portfolio), "portfolio");
}

TEST(PathSearch, DiversitySamplerReservoirAndDistance) {
  // Hamming distance to an empty archive is the maximum (64): everything
  // is maximally novel before the first run lands.
  DiversitySampler S(2005);
  EXPECT_EQ(DiversitySampler::minDistance(0x0f, S.snapshot()), 64u);

  S.insert(0x0f);
  std::vector<uint64_t> Snap = S.snapshot();
  ASSERT_EQ(Snap.size(), 1u);
  EXPECT_EQ(DiversitySampler::minDistance(0x0f, Snap), 0u);
  EXPECT_EQ(DiversitySampler::minDistance(0x0e, Snap), 1u);
  EXPECT_EQ(DiversitySampler::minDistance(0xff, Snap), 4u);

  // The reservoir never grows past its capacity, whatever the insert
  // volume; the min distance is taken over the retained sample.
  for (uint64_t I = 0; I < 1000; ++I)
    S.insert(I * 0x9e3779b97f4a7c15ULL);
  EXPECT_LE(S.snapshot().size(), size_t(32));
}
