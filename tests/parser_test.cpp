//===- parser_test.cpp - Unit tests for src/parser -------------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ast/ASTPrinter.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace dart;

namespace {

std::unique_ptr<TranslationUnit> parseOk(std::string_view Source) {
  DiagnosticsEngine Diags;
  auto TU = Parser::parse(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.toString();
  return TU;
}

void parseFails(std::string_view Source) {
  DiagnosticsEngine Diags;
  Parser::parse(Source, Diags);
  EXPECT_TRUE(Diags.hasErrors()) << "expected a parse error for: " << Source;
}

} // namespace

TEST(Parser, EmptyTranslationUnit) {
  auto TU = parseOk("");
  EXPECT_TRUE(TU->decls().empty());
}

TEST(Parser, GlobalVariables) {
  auto TU = parseOk("int a; int b = 5; char *p; extern int inputs;");
  ASSERT_EQ(TU->decls().size(), 4u);
  const auto *A = dyn_cast<VarDecl>(TU->decls()[0].get());
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(A->name(), "a");
  EXPECT_FALSE(A->isExtern());
  const auto *B = cast<VarDecl>(TU->decls()[1].get());
  ASSERT_NE(B->init(), nullptr);
  const auto *P = cast<VarDecl>(TU->decls()[2].get());
  EXPECT_TRUE(P->type()->isPointer());
  const auto *E = cast<VarDecl>(TU->decls()[3].get());
  EXPECT_TRUE(E->isExtern());
}

TEST(Parser, MultipleDeclaratorsPerLine) {
  auto TU = parseOk("int a, b = 2, *c;");
  ASSERT_EQ(TU->decls().size(), 3u);
  EXPECT_EQ(cast<VarDecl>(TU->decls()[0].get())->name(), "a");
  EXPECT_NE(cast<VarDecl>(TU->decls()[1].get())->init(), nullptr);
  EXPECT_TRUE(cast<VarDecl>(TU->decls()[2].get())->type()->isPointer());
}

TEST(Parser, FunctionDefinitionAndPrototype) {
  auto TU = parseOk("int add(int a, int b) { return a + b; } void g(void);");
  const FunctionDecl *Add = TU->findFunction("add");
  ASSERT_NE(Add, nullptr);
  EXPECT_TRUE(Add->hasBody());
  EXPECT_EQ(Add->params().size(), 2u);
  const FunctionDecl *G = TU->findFunction("g");
  ASSERT_NE(G, nullptr);
  EXPECT_FALSE(G->hasBody());
  EXPECT_TRUE(G->params().empty());
}

TEST(Parser, StructDefinition) {
  auto TU = parseOk("struct foo { int i; char c; struct foo *next; };");
  const auto *S = dyn_cast<StructDecl>(TU->decls()[0].get());
  ASSERT_NE(S, nullptr);
  EXPECT_TRUE(S->isComplete());
  ASSERT_EQ(S->fields().size(), 3u);
  EXPECT_EQ(S->fields()[0]->name(), "i");
  EXPECT_TRUE(S->fields()[2]->type()->isPointer());
}

TEST(Parser, StructForwardReference) {
  auto TU = parseOk("struct a; struct b { struct a *p; }; struct a { int x; };");
  const auto *A = dyn_cast<StructDecl>(TU->decls()[0].get());
  ASSERT_NE(A, nullptr);
  EXPECT_TRUE(A->isComplete());
  // `struct a` referenced from b resolves to the same decl.
  const StructDecl *B = nullptr;
  for (const auto &D : TU->decls())
    if (const auto *SD = dyn_cast<StructDecl>(D.get()))
      if (SD->name() == "b")
        B = SD;
  ASSERT_NE(B, nullptr);
  const auto *FieldTy = cast<PointerType>(B->fields()[0]->type());
  EXPECT_EQ(cast<StructType>(FieldTy->pointee())->decl(), A);
}

TEST(Parser, ArrayDeclarators) {
  auto TU = parseOk("int a[4]; int m[2][3];");
  const auto *A = cast<VarDecl>(TU->decls()[0].get());
  const auto *ATy = dyn_cast<ArrayType>(A->type());
  ASSERT_NE(ATy, nullptr);
  EXPECT_EQ(ATy->numElements(), 4u);
  const auto *M = cast<VarDecl>(TU->decls()[1].get());
  const auto *Outer = cast<ArrayType>(M->type());
  EXPECT_EQ(Outer->numElements(), 2u);
  const auto *Inner = cast<ArrayType>(Outer->element());
  EXPECT_EQ(Inner->numElements(), 3u);
}

TEST(Parser, ArrayParamDecaysToPointer) {
  auto TU = parseOk("int f(int buf[10]) { return buf[0]; }");
  const FunctionDecl *F = TU->findFunction("f");
  EXPECT_TRUE(F->params()[0]->type()->isPointer());
}

TEST(Parser, PrecedenceMulBeforeAdd) {
  auto TU = parseOk("int f(int x) { return 1 + x * 2; }");
  const auto *Body = cast<CompoundStmt>(TU->findFunction("f")->body());
  const auto *Ret = cast<ReturnStmt>(Body->body()[0].get());
  const auto *Add = dyn_cast<BinaryExpr>(Ret->value());
  ASSERT_NE(Add, nullptr);
  EXPECT_EQ(Add->op(), BinaryOp::Add);
  EXPECT_EQ(cast<BinaryExpr>(Add->rhs())->op(), BinaryOp::Mul);
}

TEST(Parser, PrecedenceComparisonBindsTighterThanLogical) {
  auto TU = parseOk("int f(int x, int y) { return x < 1 && y > 2; }");
  const auto *Body = cast<CompoundStmt>(TU->findFunction("f")->body());
  const auto *Ret = cast<ReturnStmt>(Body->body()[0].get());
  const auto *And = cast<BinaryExpr>(Ret->value());
  EXPECT_EQ(And->op(), BinaryOp::LogAnd);
  EXPECT_EQ(cast<BinaryExpr>(And->lhs())->op(), BinaryOp::Lt);
  EXPECT_EQ(cast<BinaryExpr>(And->rhs())->op(), BinaryOp::Gt);
}

TEST(Parser, AssignmentIsRightAssociative) {
  auto TU = parseOk("int f(int a, int b) { a = b = 1; return a; }");
  const auto *Body = cast<CompoundStmt>(TU->findFunction("f")->body());
  const auto *S = cast<ExprStmt>(Body->body()[0].get());
  const auto *Outer = cast<AssignExpr>(S->expr());
  EXPECT_NE(dyn_cast<AssignExpr>(Outer->value()), nullptr);
}

TEST(Parser, CastVsParenthesizedExpr) {
  auto TU = parseOk(
      "int f(int x) { int y; y = (int)x; y = (x) + 1; return y; }");
  const auto *Body = cast<CompoundStmt>(TU->findFunction("f")->body());
  const auto *First = cast<ExprStmt>(Body->body()[1].get());
  EXPECT_NE(dyn_cast<CastExpr>(cast<AssignExpr>(First->expr())->value()),
            nullptr);
  const auto *Second = cast<ExprStmt>(Body->body()[2].get());
  EXPECT_NE(dyn_cast<BinaryExpr>(cast<AssignExpr>(Second->expr())->value()),
            nullptr);
}

TEST(Parser, PointerCastWithStars) {
  auto TU = parseOk("int f(void *p) { char *c; c = (char *)p; return 0; }");
  (void)TU;
}

TEST(Parser, SizeofType) {
  auto TU = parseOk("long f(void) { return sizeof(int) + sizeof(char *); }");
  (void)TU;
}

TEST(Parser, ControlFlowStatements) {
  auto TU = parseOk(R"(
    int f(int n) {
      int s = 0;
      int i;
      for (i = 0; i < n; i++) s += i;
      while (s > 100) s--;
      do { s++; } while (s < 0);
      if (s == 7) return 1; else return 0;
    }
  )");
  (void)TU;
}

TEST(Parser, ForWithDeclInit) {
  auto TU = parseOk("int f(void) { int s = 0; for (int i = 0; i < 3; ++i) s += i; return s; }");
  (void)TU;
}

TEST(Parser, BreakContinueNull) {
  auto TU = parseOk(
      "int f(void) { while (1) { if (0) continue; break; } ; return 0; }");
  (void)TU;
}

TEST(Parser, MemberAndIndexChains) {
  auto TU = parseOk(R"(
    struct p { int x[3]; struct p *next; };
    int f(struct p *q) { return q->next->x[1] + (*q).x[0]; }
  )");
  (void)TU;
}

TEST(Parser, TernaryAndLogical) {
  auto TU = parseOk("int f(int a) { return a ? a > 0 || a < -5 : !a; }");
  (void)TU;
}

TEST(Parser, NullLiteral) {
  auto TU = parseOk("int f(int *p) { if (p == NULL) return 1; return 0; }");
  (void)TU;
}

TEST(Parser, ErrorMissingSemicolon) { parseFails("int f(void) { return 0 }"); }
TEST(Parser, ErrorBadTopLevel) { parseFails("42;"); }
TEST(Parser, ErrorUnclosedBrace) { parseFails("int f(void) { return 0;"); }
TEST(Parser, ErrorBadArraySize) { parseFails("int a[x];"); }
TEST(Parser, ErrorStructRedefinition) {
  parseFails("struct s { int a; }; struct s { int b; };");
}
TEST(Parser, ErrorSizeofExprUnsupported) {
  parseFails("int f(int x) { return sizeof(x); }");
}

TEST(Parser, RecoversAndReportsMultipleErrors) {
  DiagnosticsEngine Diags;
  Parser::parse("int f( { } int g(void) { return $; }", Diags);
  EXPECT_GE(Diags.errorCount(), 2u);
}

// Property: pretty-printing a parsed program and reparsing the output is a
// fixpoint (print . parse . print == print).
class ParserRoundTripTest : public ::testing::TestWithParam<const char *> {};

TEST_P(ParserRoundTripTest, PrintParsePrintIsFixpoint) {
  DiagnosticsEngine D1;
  auto TU1 = Parser::parse(GetParam(), D1);
  ASSERT_FALSE(D1.hasErrors()) << D1.toString();
  std::string P1 = printTranslationUnit(*TU1);
  DiagnosticsEngine D2;
  auto TU2 = Parser::parse(P1, D2);
  ASSERT_FALSE(D2.hasErrors()) << "reparse failed:\n" << P1 << D2.toString();
  EXPECT_EQ(P1, printTranslationUnit(*TU2));
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, ParserRoundTripTest,
    ::testing::Values(
        "int x = 5;\n",
        "int f(int a, int b) { return a * b + 3; }",
        "struct s { int a; char b; }; struct s g;",
        "int f(int *p) { if (p != NULL) return *p; return -1; }",
        "int f(int n) { int s = 0; while (n > 0) { s += n; n--; } return s; }",
        "int f(int a) { return a ? 1 : 2; }",
        "char c = 'x'; char *s = \"hi\\n\";",
        "int f(void) { int a[3]; a[0] = 1; a[1] = a[0] << 2; return a[1]; }",
        "int g(void); int f(void) { return g(); }",
        "int f(int x) { return -x + ~x + !x; }",
        "int f(int x) { x += 1; x -= 2; x *= 3; x /= 2; x %= 5; return x; }",
        "int f(struct t *p); struct t { int v; };",
        "int f(int x) { switch (x) { case 1: return 1; case 2: case 3: "
        "return 23; default: break; } return 0; }"));
