//===- snapshot_diff_test.cpp - Snapshot-resume search equivalence --------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Snapshot-resume (DartOptions::Snapshots) is a pure performance lever:
// with checkpoints on and off, a DART session over the same program and
// seed must produce the *same* bug sets, coverage bitmaps, run counts, and
// solver schedules — a resumed run is the replayed run, minus the prefix
// instructions. This suite pins that down over the paper's example
// programs, the examples/minic sources, and the §4 workloads, at --jobs 1
// (byte-exact, including every model value and run number) and --jobs 4
// (content-identical), plus under a tiny eviction budget where most packs
// are released before their children pop.
//
// Parallel comparisons use scenarios whose exploration *completes* within
// the run budget: a budget-truncated parallel search processes a
// schedule-dependent subset of the frontier, so its observables vary
// between identical invocations with snapshots on or off (pre-existing
// behaviour, pinned by pipeline_diff_test's scenario choices too).
// Truncated deep searches are compared at --jobs 1, where the schedule is
// the sequential one and the comparison stays byte-exact.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace dart;
using namespace dart::test;

namespace {

struct Scenario {
  std::string Name;
  std::string Source;
  std::string Toplevel;
  unsigned Depth;
  uint64_t Seed;
  unsigned MaxRuns;
};

std::string readExample(const std::string &FileName) {
  std::ifstream In(std::string(DART_MINIC_DIR) + "/" + FileName);
  EXPECT_TRUE(In.good()) << "cannot read example " << FileName;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

const char *introSource() {
  return R"(
    int f(int x) { return 2 * x; }
    int h(int x, int y) {
      if (x != y)
        if (f(x) == x + 10)
          abort();
      return 0;
    }
  )";
}

/// §4 workloads and intro examples whose exploration completes within the
/// budget: safe at any job count.
std::vector<Scenario> completingScenarios() {
  return {
      {"intro", introSource(), "h", 1, 42, 200},
      {"ac_controller", workloads::acControllerSource(), "ac_controller", 2,
       2005, 2000},
      {"ac_controller_deep", workloads::acControllerSource(),
       "ac_controller", 4, 2005, 2000},
      {"minisip_get_host", workloads::miniSipSource(), "sip_uri_get_host", 1,
       11, 300},
      {"minisip_receive", workloads::miniSipSource(), "sip_receive", 1, 11,
       300},
  };
}

/// Deep, budget-truncated searches: --jobs 1 only (see file comment).
std::vector<Scenario> truncatedDeepScenarios() {
  return {
      {"ac_controller_d8", workloads::acControllerSource(), "ac_controller",
       8, 2005, 1500},
      {"minisip_receive_d32", workloads::miniSipSource(), "sip_receive", 32,
       11, 400},
  };
}

/// The shipped examples/minic sources (read from the source tree); these
/// complete, so they run at both job counts.
std::vector<Scenario> minicScenarios() {
  return {
      {"filters_route", readExample("filters.c"), "route", 4, 2005, 1000},
      {"lint_clean_clamp", readExample("lint_clean.c"), "clamp", 4, 7, 500},
      {"lint_seeded", readExample("lint_seeded.c"), "seeded", 1, 3, 200},
  };
}

DartReport runSnap(const Scenario &S, bool Snapshots, unsigned Jobs,
                   uint64_t BudgetBytes = uint64_t(64) << 20) {
  auto D = compile(S.Source);
  DartOptions Opts;
  Opts.ToplevelName = S.Toplevel;
  Opts.Depth = S.Depth;
  Opts.Seed = S.Seed;
  Opts.MaxRuns = S.MaxRuns;
  Opts.Jobs = Jobs;
  Opts.StopAtFirstError = false; // collect every distinct error path
  Opts.Snapshots = Snapshots;
  Opts.SnapshotBudgetBytes = BudgetBytes;
  return D->run(Opts);
}

/// Every bug, with its exact inputs. Run numbers are only meaningful at
/// --jobs 1 (the parallel numbering follows the worker schedule).
std::vector<std::string> bugList(const DartReport &R, bool WithRunNumbers) {
  std::vector<std::string> Out;
  for (const BugInfo &B : R.Bugs) {
    if (WithRunNumbers) {
      Out.push_back(B.toString());
      continue;
    }
    std::string Sig = B.Error.toString();
    for (const auto &[InputName, Value] : B.Inputs)
      Sig += " " + InputName + "=" + std::to_string(Value);
    Out.push_back(std::move(Sig));
  }
  return Out;
}

void expectIdentical(const DartReport &On, const DartReport &Off,
                     const std::string &Name, bool WithRunNumbers) {
  EXPECT_EQ(On.Runs, Off.Runs) << Name;
  EXPECT_EQ(On.Restarts, Off.Restarts) << Name;
  EXPECT_EQ(On.ForcingMismatches, Off.ForcingMismatches) << Name;
  EXPECT_EQ(On.BugFound, Off.BugFound) << Name;
  EXPECT_EQ(bugList(On, WithRunNumbers), bugList(Off, WithRunNumbers))
      << Name;
  EXPECT_EQ(On.CompleteExploration, Off.CompleteExploration) << Name;
  EXPECT_EQ(On.BranchDirectionsCovered, Off.BranchDirectionsCovered) << Name;
  EXPECT_EQ(On.Coverage, Off.Coverage) << Name << ": coverage bitmap";
  EXPECT_EQ(On.SolverCalls, Off.SolverCalls) << Name;
  // A resumed run reports the full path's step count, so even the step
  // totals agree.
  EXPECT_EQ(On.TotalSteps, Off.TotalSteps) << Name;
}

} // namespace

TEST(SnapshotDiff, SequentialByteIdenticalAcrossModes) {
  uint64_t TotalResumed = 0;
  uint64_t ExecOn = 0, ExecOff = 0;
  std::vector<Scenario> All = completingScenarios();
  for (Scenario &S : truncatedDeepScenarios())
    All.push_back(std::move(S));
  for (const Scenario &S : All) {
    DartReport On = runSnap(S, /*Snapshots=*/true, /*Jobs=*/1);
    DartReport Off = runSnap(S, /*Snapshots=*/false, /*Jobs=*/1);
    expectIdentical(On, Off, S.Name, /*WithRunNumbers=*/true);
    // The off baseline must truly not checkpoint.
    EXPECT_EQ(Off.Snapshot.CheckpointsCaptured, 0u) << S.Name;
    EXPECT_EQ(Off.Snapshot.InstructionsSkipped, 0u) << S.Name;
    TotalResumed += On.Snapshot.RunsResumed;
    ExecOn += On.Snapshot.InstructionsExecuted;
    ExecOff += Off.Snapshot.InstructionsExecuted;
  }
  EXPECT_GT(TotalResumed, 0u) << "snapshot-resume was never exercised";
  EXPECT_LT(ExecOn, ExecOff) << "resume must skip instruction work";
}

TEST(SnapshotDiff, ParallelIdenticalAcrossModes) {
  for (const Scenario &S : completingScenarios()) {
    DartReport On = runSnap(S, /*Snapshots=*/true, /*Jobs=*/4);
    DartReport Off = runSnap(S, /*Snapshots=*/false, /*Jobs=*/4);
    expectIdentical(On, Off, S.Name, /*WithRunNumbers=*/false);
  }
}

TEST(SnapshotDiff, ParallelSnapshotModeIsDeterministic) {
  for (const Scenario &S : completingScenarios()) {
    DartReport A = runSnap(S, /*Snapshots=*/true, /*Jobs=*/4);
    DartReport B = runSnap(S, /*Snapshots=*/true, /*Jobs=*/4);
    expectIdentical(A, B, S.Name, /*WithRunNumbers=*/false);
  }
}

TEST(SnapshotDiff, MinicExamplesIdenticalAtBothJobCounts) {
  for (const Scenario &S : minicScenarios()) {
    DartReport On1 = runSnap(S, /*Snapshots=*/true, /*Jobs=*/1);
    DartReport Off1 = runSnap(S, /*Snapshots=*/false, /*Jobs=*/1);
    expectIdentical(On1, Off1, S.Name + "/j1", /*WithRunNumbers=*/true);
    DartReport On4 = runSnap(S, /*Snapshots=*/true, /*Jobs=*/4);
    DartReport Off4 = runSnap(S, /*Snapshots=*/false, /*Jobs=*/4);
    expectIdentical(On4, Off4, S.Name + "/j4", /*WithRunNumbers=*/false);
  }
}

TEST(SnapshotDiff, DeepSearchResumesMostWork) {
  // The headline claim: on a depth-32 workload the directed search redoes
  // at most half the instruction work with snapshots on.
  Scenario S{"filters_route_d32", readExample("filters.c"), "route", 32,
             2005, 1000};
  DartReport On = runSnap(S, /*Snapshots=*/true, /*Jobs=*/1);
  DartReport Off = runSnap(S, /*Snapshots=*/false, /*Jobs=*/1);
  expectIdentical(On, Off, S.Name, /*WithRunNumbers=*/true);
  EXPECT_GT(On.Snapshot.RunsResumed, 0u);
  EXPECT_LE(2 * On.Snapshot.InstructionsExecuted,
            Off.Snapshot.InstructionsExecuted)
      << "expected a >=2x executed-instruction reduction at depth 32";
}

TEST(SnapshotDiff, TinyBudgetEvictsButStaysEquivalent) {
  // A 4 KiB budget evicts nearly every pack before its children pop; every
  // miss falls back to a full replay, and the search must not notice.
  for (unsigned Jobs : {1u, 4u}) {
    Scenario S{"ac_controller_deep", workloads::acControllerSource(),
               "ac_controller", 4, 2005, 2000};
    DartReport Tiny =
        runSnap(S, /*Snapshots=*/true, Jobs, /*BudgetBytes=*/4096);
    DartReport Off = runSnap(S, /*Snapshots=*/false, Jobs);
    expectIdentical(Tiny, Off, S.Name, /*WithRunNumbers=*/Jobs == 1);
    EXPECT_GT(Tiny.Snapshot.PacksEvicted, 0u) << "budget never bound";
    EXPECT_GT(Tiny.Snapshot.PeakResidentBytes, 0u);
  }
}

TEST(SnapshotDiff, RandomOnlyIgnoresSnapshots) {
  Scenario S{"minisip_receive", workloads::miniSipSource(), "sip_receive", 4,
             11, 200};
  auto D = compile(S.Source);
  DartOptions Opts;
  Opts.ToplevelName = S.Toplevel;
  Opts.Depth = S.Depth;
  Opts.Seed = S.Seed;
  Opts.MaxRuns = S.MaxRuns;
  Opts.RandomOnly = true;
  Opts.StopAtFirstError = false;
  Opts.Snapshots = true;
  DartReport R = D->run(Opts);
  EXPECT_EQ(R.Snapshot.CheckpointsCaptured, 0u);
  EXPECT_EQ(R.Snapshot.RunsResumed, 0u);
}
