//===- interp_test.cpp - Unit tests for src/interp --------------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "interp/Interp.h"
#include "ir/Lowering.h"

#include <gtest/gtest.h>

using namespace dart;
using namespace dart::test;

namespace {

/// Compiles \p Source and calls \p Fn with \p Args in a fresh VM.
RunResult exec(std::string_view Source, const std::string &Fn,
               std::vector<int64_t> Args = {}, InterpOptions Opts = {}) {
  DiagnosticsEngine Diags;
  auto TU = parseAndCheck(Source, Diags);
  EXPECT_NE(TU, nullptr) << Diags.toString();
  if (!TU)
    return {};
  LoweredProgram P = lowerToIR(*TU, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.toString();
  Interp VM(*P.Module, Opts);
  return VM.callFunction(Fn, Args);
}

int64_t evalTo(std::string_view Source, const std::string &Fn,
               std::vector<int64_t> Args = {}) {
  RunResult R = exec(Source, Fn, std::move(Args));
  EXPECT_EQ(R.Status, RunStatus::Halted) << R.Error.toString();
  return R.ReturnValue;
}

} // namespace

TEST(Interp, ReturnsConstant) {
  EXPECT_EQ(evalTo("int f(void) { return 42; }", "f"), 42);
}

TEST(Interp, PassesArguments) {
  EXPECT_EQ(evalTo("int f(int a, int b) { return a - b; }", "f", {10, 4}), 6);
}

// Arithmetic semantics sweep: VM results must match native C semantics
// (32-bit wraparound, signed division truncation, shifts).
struct ArithCase {
  const char *Op;
  int64_t A, B;
  int64_t Expected;
};

class InterpArithTest : public ::testing::TestWithParam<ArithCase> {};

TEST_P(InterpArithTest, MatchesCSemantics) {
  const ArithCase &C = GetParam();
  std::string Src = std::string("int f(int a, int b) { return a ") + C.Op +
                    " b; }";
  EXPECT_EQ(evalTo(Src, "f", {C.A, C.B}), C.Expected)
      << C.A << " " << C.Op << " " << C.B;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InterpArithTest,
    ::testing::Values(
        ArithCase{"+", 2, 3, 5},
        ArithCase{"+", INT32_MAX, 1, INT32_MIN}, // wraparound
        ArithCase{"-", 0, INT32_MIN, INT32_MIN},
        ArithCase{"*", 100000, 100000, int32_t(100000LL * 100000LL)},
        ArithCase{"/", 7, 2, 3},
        ArithCase{"/", -7, 2, -3}, // C truncates toward zero
        ArithCase{"%", 7, 3, 1},
        ArithCase{"%", -7, 3, -1},
        ArithCase{"<<", 1, 5, 32},
        ArithCase{">>", -8, 1, -4}, // arithmetic shift for signed
        ArithCase{"&", 0xf0f0, 0xff00, 0xf000},
        ArithCase{"|", 0xf0f0, 0x0f0f, 0xffff},
        ArithCase{"^", 0xff, 0x0f, 0xf0},
        ArithCase{"==", 3, 3, 1},
        ArithCase{"!=", 3, 3, 0},
        ArithCase{"<", -1, 0, 1},
        ArithCase{"<=", 5, 5, 1},
        ArithCase{">", -1, 0, 0},
        ArithCase{">=", INT32_MIN, 0, 0}));

TEST(Interp, UnsignedComparison) {
  // (unsigned)-1 is UINT_MAX > 0.
  EXPECT_EQ(
      evalTo("int f(int a) { unsigned u = a; return u > 100u; }", "f", {-1}),
      1);
}

TEST(Interp, UnsignedDivision) {
  EXPECT_EQ(evalTo("unsigned f(unsigned a, unsigned b) { return a / b; }",
                   "f", {int64_t(4294967295u), 2}),
            2147483647);
}

TEST(Interp, LongArithmetic) {
  EXPECT_EQ(evalTo("long f(long a) { return a * 1000000007; }", "f",
                   {1000000007}),
            1000000007LL * 1000000007LL);
}

TEST(Interp, CharTruncation) {
  EXPECT_EQ(evalTo("int f(int x) { char c = x; return c; }", "f", {300}),
            44);
}

TEST(Interp, DivisionByZeroCaught) {
  RunResult R = exec("int f(int a) { return 10 / a; }", "f", {0});
  EXPECT_EQ(R.Status, RunStatus::Errored);
  EXPECT_EQ(R.Error.Kind, RunErrorKind::DivByZero);
}

TEST(Interp, SignedDivOverflowCaught) {
  RunResult R = exec("int f(int a, int b) { return a / b; }", "f",
                     {INT32_MIN, -1});
  // INT_MIN/-1 at 32 bits: our VM computes at 64-bit then truncates, so
  // this is defined here; the 64-bit case errors.
  RunResult R2 = exec("long f(long a, long b) { return a / b; }", "f",
                      {INT64_MIN, -1});
  EXPECT_EQ(R2.Status, RunStatus::Errored);
  EXPECT_EQ(R2.Error.Kind, RunErrorKind::DivOverflow);
  (void)R;
}

TEST(Interp, ControlFlowLoops) {
  EXPECT_EQ(evalTo(R"(
    int f(int n) {
      int s = 0;
      for (int i = 1; i <= n; ++i) s += i;
      return s;
    })",
                   "f", {10}),
            55);
}

TEST(Interp, WhileBreakContinue) {
  EXPECT_EQ(evalTo(R"(
    int f(void) {
      int i = 0; int s = 0;
      while (1) {
        i++;
        if (i > 10) break;
        if (i % 2 == 0) continue;
        s += i;
      }
      return s;
    })",
                   "f"),
            25);
}

TEST(Interp, RecursionFibonacci) {
  EXPECT_EQ(evalTo(R"(
    int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
  )",
                   "fib", {10}),
            55);
}

TEST(Interp, GlobalsPersistAcrossCalls) {
  DiagnosticsEngine Diags;
  auto TU = parseAndCheck("int count = 0; int tick(void) { return ++count; }",
                          Diags);
  ASSERT_NE(TU, nullptr);
  LoweredProgram P = lowerToIR(*TU, Diags);
  Interp VM(*P.Module);
  EXPECT_EQ(VM.callFunction("tick", {}).ReturnValue, 1);
  EXPECT_EQ(VM.callFunction("tick", {}).ReturnValue, 2);
  EXPECT_EQ(VM.callFunction("tick", {}).ReturnValue, 3);
}

TEST(Interp, PointersAndAddressOf) {
  EXPECT_EQ(evalTo(R"(
    void set(int *p, int v) { *p = v; }
    int f(void) { int x = 1; set(&x, 99); return x; }
  )",
                   "f"),
            99);
}

TEST(Interp, ArraysAndPointerArithmetic) {
  EXPECT_EQ(evalTo(R"(
    int f(void) {
      int a[5];
      int *p = a;
      for (int i = 0; i < 5; i++) *(p + i) = i * 10;
      return a[3] + p[4];
    })",
                   "f"),
            70);
}

TEST(Interp, MallocFree) {
  EXPECT_EQ(evalTo(R"(
    int f(void) {
      int *p = (int *)malloc(4 * sizeof(int));
      if (p == NULL) return -1;
      p[2] = 7;
      int v = p[2];
      free(p);
      return v;
    })",
                   "f"),
            7);
}

TEST(Interp, NullDerefCrash) {
  RunResult R = exec("int f(int *p) { return *p; }", "f", {0});
  EXPECT_EQ(R.Status, RunStatus::Errored);
  EXPECT_EQ(R.Error.Kind, RunErrorKind::MemoryFault);
  EXPECT_EQ(R.Error.Fault, MemFault::NullDeref);
}

TEST(Interp, BufferOverflowCrash) {
  RunResult R = exec(R"(
    int f(void) {
      int a[2];
      a[0] = 0; a[1] = 1;
      return a[2];
    })",
                     "f");
  EXPECT_EQ(R.Status, RunStatus::Errored);
  EXPECT_EQ(R.Error.Fault, MemFault::OutOfBounds);
}

TEST(Interp, UseAfterFreeCrash) {
  RunResult R = exec(R"(
    int f(void) {
      int *p = (int *)malloc(sizeof(int));
      free(p);
      return *p;
    })",
                     "f");
  EXPECT_EQ(R.Status, RunStatus::Errored);
  EXPECT_EQ(R.Error.Fault, MemFault::UseAfterFree);
}

TEST(Interp, DoubleFreeCrash) {
  RunResult R = exec(R"(
    void f(void) {
      int *p = (int *)malloc(sizeof(int));
      free(p);
      free(p);
    })",
                     "f");
  EXPECT_EQ(R.Status, RunStatus::Errored);
  EXPECT_EQ(R.Error.Fault, MemFault::DoubleFree);
}

TEST(Interp, DanglingStackPointerCrash) {
  RunResult R = exec(R"(
    int *leak(void) { int local = 5; return &local; }
    int f(void) { int *p = leak(); return *p; }
  )",
                     "f");
  EXPECT_EQ(R.Status, RunStatus::Errored);
  EXPECT_EQ(R.Error.Fault, MemFault::UseAfterFree);
}

TEST(Interp, AbortReached) {
  RunResult R = exec("void f(void) { abort(); }", "f");
  EXPECT_EQ(R.Status, RunStatus::Errored);
  EXPECT_EQ(R.Error.Kind, RunErrorKind::AbortCall);
}

TEST(Interp, AssertViolation) {
  RunResult R = exec("void f(int x) { assert(x == 3); }", "f", {4});
  EXPECT_EQ(R.Status, RunStatus::Errored);
  EXPECT_EQ(R.Error.Kind, RunErrorKind::AssertFailure);
  RunResult Ok = exec("void f(int x) { assert(x == 3); }", "f", {3});
  EXPECT_EQ(Ok.Status, RunStatus::Halted);
}

TEST(Interp, StepLimitDetectsNonTermination) {
  InterpOptions Opts;
  Opts.MaxSteps = 1000;
  RunResult R = exec("void f(void) { while (1) { } }", "f", {}, Opts);
  EXPECT_EQ(R.Status, RunStatus::Errored);
  EXPECT_EQ(R.Error.Kind, RunErrorKind::StepLimit);
}

TEST(Interp, StackOverflowDetected) {
  RunResult R = exec("int f(int n) { return f(n + 1); }", "f", {0});
  EXPECT_EQ(R.Status, RunStatus::Errored);
  EXPECT_EQ(R.Error.Kind, RunErrorKind::StackOverflow);
}

TEST(Interp, HeapLimitMakesMallocReturnNull) {
  InterpOptions Opts;
  Opts.HeapLimitBytes = 1024;
  RunResult R = exec(R"(
    long f(void) {
      char *p = (char *)malloc(10000);
      if (p == NULL) return -1;
      return 1;
    })",
                     "f", {}, Opts);
  EXPECT_EQ(R.Status, RunStatus::Halted);
  EXPECT_EQ(R.ReturnValue, -1);
}

TEST(Interp, StringLiteralsReadable) {
  EXPECT_EQ(evalTo(R"(
    int f(void) {
      char *s = "hi";
      return s[0] + s[1] + s[2];
    })",
                   "f"),
            'h' + 'i');
}

TEST(Interp, StringLiteralWriteFaults) {
  RunResult R = exec("void f(void) { char *s = \"ro\"; s[0] = 'x'; }", "f");
  EXPECT_EQ(R.Status, RunStatus::Errored);
  EXPECT_EQ(R.Error.Fault, MemFault::ReadOnlyWrite);
}

TEST(Interp, StructFieldsAndCopy) {
  EXPECT_EQ(evalTo(R"(
    struct point { int x; int y; };
    int f(void) {
      struct point a;
      struct point b;
      a.x = 3; a.y = 4;
      b = a;
      a.x = 100;
      return b.x * 10 + b.y;
    })",
                   "f"),
            34);
}

TEST(Interp, LinkedListTraversal) {
  EXPECT_EQ(evalTo(R"(
    struct node { int v; struct node *next; };
    int f(void) {
      struct node *head = NULL;
      for (int i = 1; i <= 4; i++) {
        struct node *n = (struct node *)malloc(sizeof(struct node));
        n->v = i;
        n->next = head;
        head = n;
      }
      int s = 0;
      while (head != NULL) { s = s * 10 + head->v; head = head->next; }
      return s;
    })",
                   "f"),
            4321);
}

TEST(Interp, PaperStructCastExample) {
  // §2.5: write through a (char*) alias of a struct field, observe via the
  // struct view.
  EXPECT_EQ(evalTo(R"(
    struct foo { int i; char c; };
    int f(void) {
      struct foo v;
      v.i = 0; v.c = 0;
      *((char *)&v + sizeof(int)) = 1;
      return v.c;
    })",
                   "f"),
            1);
}

TEST(Interp, NativeFunctionRegistration) {
  DiagnosticsEngine Diags;
  auto TU = parseAndCheck(
      "int triple(int x); int f(int a) { return triple(a) + 1; }", Diags);
  ASSERT_NE(TU, nullptr);
  LoweredProgram P = lowerToIR(*TU, Diags);
  Interp VM(*P.Module);
  VM.registerNative("triple",
                    [](Interp &, const std::vector<int64_t> &Args) {
                      return NativeResult{Args[0] * 3, std::nullopt};
                    });
  EXPECT_EQ(VM.callFunction("f", {5}).ReturnValue, 16);
}

TEST(Interp, ExternalFunctionWithoutHooksIsAnError) {
  // Without an environment model there is nothing to resolve external
  // functions to; the run errors instead of silently inventing values.
  RunResult R = exec("int env(void); int f(void) { return env() + 1; }", "f");
  EXPECT_EQ(R.Status, RunStatus::Errored);
  EXPECT_EQ(R.Error.Kind, RunErrorKind::MissingFunction);
}

TEST(Interp, MissingToplevelReported) {
  RunResult R = exec("int f(void) { return 0; }", "nope");
  EXPECT_EQ(R.Status, RunStatus::Errored);
  EXPECT_EQ(R.Error.Kind, RunErrorKind::MissingFunction);
}

TEST(Interp, CompoundAssignAndIncDec) {
  EXPECT_EQ(evalTo(R"(
    int f(int a) {
      int x = a;
      x += 5; x -= 2; x *= 3; x /= 2; x %= 100;
      x <<= 1; x >>= 1; x |= 8; x &= 0xfe; x ^= 2;
      int y = x++;
      int z = --x;
      return x + y * 1000 + z * 1000000;
    })",
                   "f", {10}),
            // x: 10 +5 -2 *3 /2 %100 <<1 >>1 |8 &0xfe ^2 = 24;
            // y = x++ = 24 (x becomes 25); z = --x = 24 (x back to 24).
            24 + 24 * 1000 + 24 * 1000000);
}

TEST(Interp, PostIncrementSemantics) {
  EXPECT_EQ(evalTo(R"(
    int f(void) {
      int i = 5;
      int a = i++;
      int b = ++i;
      return a * 100 + b * 10 + i;
    })",
                   "f"),
            5 * 100 + 7 * 10 + 7);
}

TEST(Interp, PointerIncrementWalksArray) {
  EXPECT_EQ(evalTo(R"(
    int f(void) {
      int a[3];
      a[0] = 1; a[1] = 2; a[2] = 3;
      int *p = a;
      p++;
      return *p++ + *p;
    })",
                   "f"),
            5);
}

TEST(Interp, TwoDimensionalArrays) {
  EXPECT_EQ(evalTo(R"(
    int f(void) {
      int m[2][3];
      for (int i = 0; i < 2; i++)
        for (int j = 0; j < 3; j++)
          m[i][j] = i * 3 + j;
      return m[1][2];
    })",
                   "f"),
            5);
}

TEST(Interp, PointerComparisonDynamic) {
  // §2.5: pointer equality is decided by runtime values, no alias analysis.
  EXPECT_EQ(evalTo(R"(
    int f(void) {
      int x;
      int *p = &x;
      int *q = &x;
      return p == q;
    })",
                   "f"),
            1);
}

TEST(Interp, StepsAreCounted) {
  RunResult R = exec("int f(void) { int s = 0; for (int i = 0; i < 100; i++) s += i; return s; }", "f");
  EXPECT_EQ(R.Status, RunStatus::Halted);
  EXPECT_GT(R.Steps, 100u);
}
