//===- driver_test.cpp - Unit tests for src/core interface/driver ----------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "core/Interface.h"
#include "core/TestDriver.h"

#include <gtest/gtest.h>

using namespace dart;
using namespace dart::test;

//===----------------------------------------------------------------------===//
// Interface extraction (§3.1)
//===----------------------------------------------------------------------===//

TEST(Interface, ToplevelParamsExtracted) {
  auto TU = check("void top(int a, char *b) { }");
  ProgramInterface I = extractInterface(*TU, "top");
  ASSERT_NE(I.Toplevel, nullptr);
  ASSERT_EQ(I.ToplevelParams.size(), 2u);
  EXPECT_EQ(I.ToplevelParams[0]->name(), "a");
  EXPECT_TRUE(I.ToplevelParams[1]->type()->isPointer());
}

TEST(Interface, ExternVariablesExtracted) {
  auto TU = check(R"(
    extern int env_a;
    extern char env_b;
    int defined_global = 3;
    void top(void) { }
  )");
  ProgramInterface I = extractInterface(*TU, "top");
  ASSERT_EQ(I.ExternVariables.size(), 2u);
  EXPECT_EQ(I.ExternVariables[0]->name(), "env_a");
}

TEST(Interface, ExternalFunctionsExtracted) {
  auto TU = check(R"(
    int external_one(void);
    int internal(void) { return 1; }
    void top(void) { external_one(); internal(); implicit_one(); }
  )");
  ProgramInterface I = extractInterface(*TU, "top");
  std::vector<std::string> Names;
  for (const auto &F : I.ExternalFunctions)
    Names.push_back(F.Name);
  EXPECT_EQ(Names.size(), 2u);
  EXPECT_NE(std::find(Names.begin(), Names.end(), "external_one"),
            Names.end());
  EXPECT_NE(std::find(Names.begin(), Names.end(), "implicit_one"),
            Names.end());
}

TEST(Interface, BuiltinsAreNotExternal) {
  auto TU = check(R"(
    void top(void) {
      int *p = (int *)malloc(4);
      free(p);
    }
  )");
  ProgramInterface I = extractInterface(*TU, "top");
  EXPECT_TRUE(I.ExternalFunctions.empty())
      << "malloc/free are library functions, not environment";
}

TEST(Interface, PrototypeWithLaterDefinitionIsNotExternal) {
  auto TU = check("int f(void); int f(void) { return 1; } void top(void) { f(); }");
  ProgramInterface I = extractInterface(*TU, "top");
  EXPECT_TRUE(I.ExternalFunctions.empty());
}

TEST(Interface, MissingToplevelYieldsNull) {
  auto TU = check("int f(void) { return 0; }");
  ProgramInterface I = extractInterface(*TU, "nope");
  EXPECT_EQ(I.Toplevel, nullptr);
}

TEST(Interface, Rendering) {
  auto TU = check("extern int e; int g(void); void top(int x) { g(); }");
  std::string Text = extractInterface(*TU, "top").toString();
  EXPECT_NE(Text.find("toplevel: top"), std::string::npos);
  EXPECT_NE(Text.find("param x"), std::string::npos);
  EXPECT_NE(Text.find("extern var e"), std::string::npos);
  EXPECT_NE(Text.find("external function g"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// InputManager
//===----------------------------------------------------------------------===//

TEST(InputManagerTest, ValuesMemoizedIntoIM) {
  Rng R(1);
  InputManager M(R);
  M.beginRun();
  InputId A = M.createInput(InputKind::Integer, ValType::int32(), "a");
  int64_t V1 = M.valueFor(A);
  EXPECT_EQ(M.valueFor(A), V1) << "same run: memoized";
  M.beginRun();
  M.createInput(InputKind::Integer, ValType::int32(), "a");
  EXPECT_EQ(M.valueFor(A), V1) << "next run: IM persists";
  M.reset();
  M.beginRun();
  M.createInput(InputKind::Integer, ValType::int32(), "a");
  // After reset the value is re-randomized (very likely different).
  // Just check the registry is rebuilt.
  EXPECT_EQ(M.inputsThisRun(), 1u);
}

TEST(InputManagerTest, ApplyModelOverrides) {
  Rng R(1);
  InputManager M(R);
  M.beginRun();
  InputId A = M.createInput(InputKind::Integer, ValType::int32(), "a");
  InputId B = M.createInput(InputKind::Integer, ValType::int32(), "b");
  int64_t OldB = M.valueFor(B);
  M.valueFor(A);
  M.applyModel({{A, 777}});
  EXPECT_EQ(M.valueFor(A), 777);
  EXPECT_EQ(M.valueFor(B), OldB) << "IM + IM' preserves other inputs";
}

TEST(InputManagerTest, DomainsFollowTypes) {
  Rng R(1);
  InputManager M(R);
  M.beginRun();
  InputId C = M.createInput(InputKind::Integer, ValType::int8(), "c");
  InputId P = M.createInput(InputKind::PointerChoice, ValType::pointer(),
                            "p");
  EXPECT_EQ(M.domainOf(C).Min, -128);
  EXPECT_EQ(M.domainOf(C).Max, 127);
  EXPECT_EQ(M.domainOf(P).Min, 0);
  EXPECT_EQ(M.domainOf(P).Max, 1);
}

TEST(InputManagerTest, PointerChoiceValuesAreBits) {
  Rng R(123);
  InputManager M(R);
  M.beginRun();
  for (int I = 0; I < 32; ++I) {
    InputId Id = M.createInput(InputKind::PointerChoice, ValType::pointer(),
                               "p" + std::to_string(I));
    int64_t V = M.valueFor(Id);
    EXPECT_TRUE(V == 0 || V == 1);
  }
}

//===----------------------------------------------------------------------===//
// Driver source emission (Fig. 7)
//===----------------------------------------------------------------------===//

TEST(DriverSource, MatchesFigureSevenShape) {
  auto D = compile(R"(
    int ext_fun(void);
    extern int env;
    void ac_controller(int message) { ext_fun(); }
  )");
  std::string Src = D->driverSourceFor("ac_controller", 2);
  EXPECT_NE(Src.find("void main()"), std::string::npos);
  EXPECT_NE(Src.find("for (i = 0; i < 2; i++)"), std::string::npos);
  EXPECT_NE(Src.find("random_init(&message, int)"), std::string::npos);
  EXPECT_NE(Src.find("ac_controller(message)"), std::string::npos);
  EXPECT_NE(Src.find("int ext_fun()"), std::string::npos);
  EXPECT_NE(Src.find("random_init(&env, int)"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Random initialization shapes (Fig. 8)
//===----------------------------------------------------------------------===//

TEST(RandomInit, PointerInputsAreNullRoughlyHalfTheTime) {
  // Run many fresh random-only runs of a program that just reports whether
  // its pointer argument was NULL; the NULL rate must be ~0.5 (Fig. 8).
  const char *Program = R"(
    int nullness = 0;
    void probe(int *p) {
      if (p == NULL) nullness = 1; else nullness = 0;
    }
  )";
  auto D = compile(Program);
  // Count via crash-free instrumentation: use RandomOnly runs and check
  // the engine completes; the statistical check happens at the Rng level
  // in support_test. Here we only verify both shapes occur.
  DartOptions Opts;
  Opts.ToplevelName = "probe";
  Opts.RandomOnly = true;
  Opts.MaxRuns = 64;
  DartReport R = D->run(Opts);
  EXPECT_EQ(R.Runs, 64u);
  EXPECT_FALSE(R.BugFound);
}

TEST(RandomInit, StructPointersInitializeAllFields) {
  // Every field of a heap-allocated struct input is an independent input;
  // the engine can steer each to a target value.
  const char *Program = R"(
    struct msg { int kind; char flag; long stamp; };
    void f(struct msg *m) {
      if (m != NULL)
        if (m->kind == 7)
          if (m->flag == 'x')
            if (m->stamp == 123456789)
              abort();
    }
  )";
  DartReport R = runDart(Program, "f", 1, 21, 500);
  ASSERT_TRUE(R.BugFound);
}

TEST(RandomInit, ArraysInitializeEveryElement) {
  const char *Program = R"(
    struct buf { int data[4]; };
    void f(struct buf *b) {
      if (b != NULL)
        if (b->data[0] == 1 && b->data[3] == 4)
          abort();
    }
  )";
  DartReport R = runDart(Program, "f", 1, 13, 500);
  ASSERT_TRUE(R.BugFound);
}

TEST(RandomInit, RecursionDepthCapForcesTermination) {
  // A struct with two pointers to itself has branching factor 2 * p(0.5):
  // without a depth cap random_init could diverge; the cap guarantees
  // termination.
  const char *Program = R"(
    struct tree { int v; struct tree *l; struct tree *r; };
    int count(struct tree *t) {
      if (t == NULL) return 0;
      return 1 + count(t->l) + count(t->r);
    }
  )";
  auto D = compile(Program);
  DartOptions Opts;
  Opts.ToplevelName = "count";
  Opts.RandomOnly = true;
  Opts.MaxRuns = 200;
  Opts.Driver.MaxPointerInitDepth = 6;
  DartReport R = D->run(Opts);
  EXPECT_EQ(R.Runs, 200u) << "all runs terminate";
  EXPECT_FALSE(R.BugFound);
}

TEST(RandomInit, ExternalPointerReturnsAreFreshOrNull) {
  // §3.4: external functions returning pointers return NULL or a fresh
  // cell, never an existing object.
  const char *Program = R"(
    struct blob { int tag; };
    struct blob *get_blob(void);
    void f(void) {
      struct blob *a = get_blob();
      if (a != NULL)
        if (a->tag == 31337)
          abort();
    }
  )";
  DartReport R = runDart(Program, "f", 1, 2, 500);
  EXPECT_TRUE(R.BugFound);
}

TEST(RandomInit, VoidPointerParamsAreSafe) {
  const char *Program = R"(
    int f(void *p) {
      if (p == NULL) return 0;
      return 1;
    }
  )";
  auto D = compile(Program);
  DartOptions Opts;
  Opts.ToplevelName = "f";
  Opts.RandomOnly = true;
  Opts.MaxRuns = 32;
  DartReport R = D->run(Opts);
  EXPECT_FALSE(R.BugFound);
}

TEST(Facade, DefinedFunctionsListed) {
  auto D = compile("int a(void) { return 1; } int b(void); int c(void) { return 2; }");
  auto Names = D->definedFunctions();
  ASSERT_EQ(Names.size(), 2u);
  EXPECT_EQ(Names[0], "a");
  EXPECT_EQ(Names[1], "c");
}

TEST(Facade, CompilationErrorsReported) {
  std::string Errors;
  auto D = Dart::fromSource("int f(void) { return $; }", &Errors);
  EXPECT_EQ(D, nullptr);
  EXPECT_FALSE(Errors.empty());
}
