//===- checkpoint_test.cpp - CheckpointLedger edge cases ------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Eviction-boundary behaviour of the snapshot-resume ledger: admission-order
// eviction under a byte budget, a single pack larger than the whole budget,
// release() racing concurrent resumeFor() pins, and — at the engine level —
// the full-replay fallback keeping a parallel search observably identical
// when every pack is evicted before its children pop. The whole file also
// runs under the CI thread-sanitizer leg.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "concolic/Checkpoint.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

using namespace dart;
using namespace dart::test;

namespace {

/// Builds one real CheckpointPack by driving a branchy function through the
/// concolic pipeline with a CheckpointRecorder attached — the same plumbing
/// the engines use, so ApproxBytes and the entry chain are genuine.
struct PackFactory {
  std::unique_ptr<TranslationUnit> TU;
  LoweredProgram Program;
  std::vector<InputInfo> Inputs;
  PredArena Arena;
  std::unique_ptr<ConcolicRun> Hooks;
  std::unique_ptr<Interp> VM;
  std::unique_ptr<CheckpointRecorder> Recorder;

  std::shared_ptr<CheckpointPack> make(int64_t Arg) {
    DiagnosticsEngine Diags;
    TU = parseAndCheck(R"(
      int probe(int x) {
        int acc;
        acc = 0;
        if (x > 10) { acc = acc + 1; }
        if (x > 20) { acc = acc + 2; }
        if (x > 30) { acc = acc + 4; }
        return acc;
      }
    )",
                       Diags);
    EXPECT_NE(TU, nullptr) << Diags.toString();
    if (!TU)
      return nullptr;
    Program = lowerToIR(*TU, Diags);
    EXPECT_FALSE(Diags.hasErrors());
    Inputs = {InputInfo{InputKind::Integer, ValType::int32(), "x0"}};
    Hooks = std::make_unique<ConcolicRun>(Inputs, Arena,
                                          std::vector<BranchRecord>(),
                                          ConcolicOptions{});
    VM = std::make_unique<Interp>(*Program.Module);
    VM->setHooks(Hooks.get());
    // All entries land on input level 0 (the lone input exists before the
    // first conditional is irrelevant here: the recorder asks this
    // callback), so resumeFor(any id) selects the deepest entry.
    Recorder = std::make_unique<CheckpointRecorder>(
        *VM, [] { return InputId(0); });
    Hooks->setCaptureHook(Recorder.get());
    auto *ParamAddrs = VM->beginCall("probe", {Arg});
    EXPECT_NE(ParamAddrs, nullptr);
    if (!ParamAddrs)
      return nullptr;
    Hooks->bindInput((*ParamAddrs)[0], ValType::int32(), InputId(0));
    RunResult Result = VM->finishCall();
    EXPECT_EQ(Result.Status, RunStatus::Halted);
    PathData Path = Hooks->takePath();
    return Recorder->finalize(*Hooks, Path, Inputs);
  }
};

std::shared_ptr<CheckpointPack> makePack(int64_t Arg = 25) {
  PackFactory F;
  return F.make(Arg);
}

} // namespace

TEST(CheckpointLedger, AdmissionOrderEviction) {
  auto P1 = makePack(5);
  auto P2 = makePack(15);
  auto P3 = makePack(35);
  ASSERT_TRUE(P1 && P2 && P3);
  ASSERT_GT(P1->approxBytes(), 0u);
  EXPECT_TRUE(P1->resumeFor(0).has_value());

  // Budget fits two packs but not three. The handles held here keep every
  // pack "live" (referenced by pending work), so the ledger must evict
  // rather than sweep — and it evicts in admission order.
  CheckpointLedger Ledger(P1->approxBytes() + P2->approxBytes() +
                          P3->approxBytes() / 2);
  Ledger.admit(P1);
  Ledger.admit(P2);
  EXPECT_EQ(Ledger.evictions(), 0u);
  Ledger.admit(P3);
  EXPECT_EQ(Ledger.evictions(), 1u);
  EXPECT_FALSE(P1->resumeFor(0).has_value()) << "oldest pack must go first";
  EXPECT_TRUE(P2->resumeFor(0).has_value());
  EXPECT_TRUE(P3->resumeFor(0).has_value());
}

TEST(CheckpointLedger, SinglePackExceedingBudgetEvictsItself) {
  auto P = makePack();
  ASSERT_TRUE(P);
  ASSERT_TRUE(P->resumeFor(0).has_value());

  CheckpointLedger Ledger(1); // smaller than any pack
  Ledger.admit(P);
  EXPECT_EQ(Ledger.evictions(), 1u);
  EXPECT_FALSE(P->resumeFor(0).has_value());
  // Peak accounting still records the admitted bytes before the eviction.
  EXPECT_EQ(Ledger.peakResidentBytes(), P->approxBytes());
}

TEST(CheckpointLedger, SweepPrefersDeadPacksOverLiveOnes) {
  auto Dead = makePack(5);
  auto Live = makePack(35);
  ASSERT_TRUE(Dead && Live);
  CheckpointLedger Ledger(Dead->approxBytes() + Live->approxBytes() / 2);
  Ledger.admit(Dead);
  Dead.reset(); // no pending child references the first pack any more
  Ledger.admit(Live);
  // The over-budget admit frees the dead pack instead of evicting the live
  // one that pending work still needs.
  EXPECT_EQ(Ledger.evictions(), 0u);
  EXPECT_TRUE(Live->resumeFor(0).has_value());
}

TEST(CheckpointPack, MaterializedCheckpointSurvivesRelease) {
  auto P = makePack();
  ASSERT_TRUE(P);
  auto M = P->resumeFor(0);
  ASSERT_TRUE(M.has_value());
  size_t Branch = M->BranchIndex;
  P->release();
  EXPECT_FALSE(P->resumeFor(0).has_value());
  // The materialized state is standalone: untouched by the eviction.
  EXPECT_EQ(M->BranchIndex, Branch);
  EXPECT_GT(M->Vm.Steps, 0u);
}

TEST(CheckpointPack, ConcurrentResumeRacingRelease) {
  // Readers pin the contents while a releaser frees them: every resumeFor
  // must return either a fully valid checkpoint or a clean miss, and after
  // release() completes everyone misses. TSan checks the handoff.
  for (int Round = 0; Round < 8; ++Round) {
    auto P = makePack();
    ASSERT_TRUE(P);
    std::atomic<bool> Go{false};
    std::atomic<uint64_t> Hits{0}, Misses{0};
    std::vector<std::thread> Readers;
    for (int T = 0; T < 4; ++T) {
      Readers.emplace_back([&] {
        while (!Go.load())
          std::this_thread::yield();
        for (int I = 0; I < 200; ++I) {
          auto M = P->resumeFor(0);
          if (M.has_value()) {
            // A hit must be internally consistent, not torn.
            EXPECT_GT(M->Vm.Steps, 0u);
            Hits.fetch_add(1);
          } else {
            Misses.fetch_add(1);
          }
        }
      });
    }
    std::thread Releaser([&] {
      while (!Go.load())
        std::this_thread::yield();
      P->release();
    });
    Go.store(true);
    for (std::thread &T : Readers)
      T.join();
    Releaser.join();
    EXPECT_FALSE(P->resumeFor(0).has_value());
    EXPECT_EQ(Hits.load() + Misses.load(), 4u * 200u);
  }
}

namespace {

/// Branchy-but-completing program: the parallel exploration finishes well
/// inside the run budget, so its observables are schedule-independent and
/// comparable across the snapshot axis (same contract snapshot_diff_test
/// leans on).
const char *fallbackSource() {
  return R"(
    int f(int x) { return 2 * x; }
    int h(int x, int y) {
      if (x != y)
        if (f(x) == x + 10)
          abort();
      return 0;
    }
  )";
}

DartReport runFallbackSession(bool Snapshots, uint64_t BudgetBytes) {
  auto D = compile(fallbackSource());
  DartOptions Opts;
  Opts.ToplevelName = "h";
  Opts.Depth = 2;
  Opts.Seed = 42;
  Opts.MaxRuns = 400;
  Opts.Jobs = 4;
  Opts.StopAtFirstError = false;
  Opts.Snapshots = Snapshots;
  Opts.SnapshotBudgetBytes = BudgetBytes;
  return D->run(Opts);
}

} // namespace

TEST(CheckpointLedger, ResumeAfterEvictFallsBackToFullReplayInParallel) {
  // A 1-byte budget evicts every pack at admission, so each of the four
  // workers' children miss and fall back to a full replay — concurrently.
  DartReport Off = runFallbackSession(false, 0);
  DartReport On = runFallbackSession(true, 1);
  EXPECT_GT(On.Snapshot.PacksEvicted, 0u);
  EXPECT_EQ(On.Snapshot.RunsResumed, 0u);
  EXPECT_GT(On.Snapshot.ResumeMisses, 0u);
  // The search is observably identical to snapshots-off regardless.
  EXPECT_EQ(On.Runs, Off.Runs);
  EXPECT_EQ(On.BranchDirectionsCovered, Off.BranchDirectionsCovered);
  EXPECT_EQ(On.Coverage, Off.Coverage);
  EXPECT_EQ(On.BugFound, Off.BugFound);
  EXPECT_EQ(On.Bugs.size(), Off.Bugs.size());
}

TEST(CheckpointLedger, TightBudgetKeepsParallelSearchIdentical) {
  // A budget around a couple of packs: children of still-resident parents
  // resume, the rest fall back — whichever mix the schedule produces, the
  // observables must match snapshots-off. (Whether an eviction fires under
  // this budget is timing-dependent at --jobs 4; the guaranteed-eviction
  // path is pinned by the 1-byte-budget test above.)
  DartReport Off = runFallbackSession(false, 0);
  DartReport On = runFallbackSession(true, 24 * 1024);
  EXPECT_GT(On.Snapshot.RunsResumed, 0u);
  EXPECT_EQ(On.Runs, Off.Runs);
  EXPECT_EQ(On.BranchDirectionsCovered, Off.BranchDirectionsCovered);
  EXPECT_EQ(On.Coverage, Off.Coverage);
  EXPECT_EQ(On.BugFound, Off.BugFound);
}
