//===- support_test.cpp - Unit tests for src/support ----------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Casting.h"
#include "support/Diagnostics.h"
#include "support/Rng.h"
#include "support/SourceLocation.h"

#include <gtest/gtest.h>

#include <set>

using namespace dart;

TEST(SourceLocation, InvalidByDefault) {
  SourceLocation Loc;
  EXPECT_FALSE(Loc.isValid());
  EXPECT_EQ(Loc.toString(), "<unknown>");
}

TEST(SourceLocation, Formatting) {
  SourceLocation Loc{3, 14, 100};
  EXPECT_TRUE(Loc.isValid());
  EXPECT_EQ(Loc.toString(), "3:14");
}

TEST(Diagnostics, CountsOnlyErrors) {
  DiagnosticsEngine Diags;
  Diags.warning({1, 1, 0}, "w");
  Diags.note({1, 2, 1}, "n");
  EXPECT_FALSE(Diags.hasErrors());
  Diags.error({2, 1, 5}, "e");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 1u);
  EXPECT_EQ(Diags.diagnostics().size(), 3u);
}

TEST(Diagnostics, Rendering) {
  DiagnosticsEngine Diags;
  Diags.error({7, 3, 0}, "unexpected token");
  EXPECT_EQ(Diags.toString(), "7:3: error: unexpected token\n");
}

TEST(Diagnostics, ClearResets) {
  DiagnosticsEngine Diags;
  Diags.error({1, 1, 0}, "x");
  Diags.clear();
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_TRUE(Diags.diagnostics().empty());
}

TEST(Rng, Deterministic) {
  Rng A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, SeedsDiffer) {
  Rng A(1), B(2);
  bool AnyDifferent = false;
  for (int I = 0; I < 10; ++I)
    AnyDifferent |= A.next() != B.next();
  EXPECT_TRUE(AnyDifferent);
}

TEST(Rng, NextBitsStaysInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    int64_t V8 = R.nextBits(8);
    EXPECT_GE(V8, -128);
    EXPECT_LE(V8, 127);
    int64_t V32 = R.nextBits(32);
    EXPECT_GE(V32, INT32_MIN);
    EXPECT_LE(V32, INT32_MAX);
  }
}

TEST(Rng, NextBelowUniformSupport) {
  Rng R(99);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 200; ++I) {
    uint64_t V = R.nextBelow(5);
    EXPECT_LT(V, 5u);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 5u) << "all residues should appear in 200 draws";
}

TEST(Rng, CoinTossIsRoughlyFair) {
  Rng R(2005);
  int Heads = 0;
  const int N = 10000;
  for (int I = 0; I < N; ++I)
    Heads += R.coinToss() ? 1 : 0;
  // 10000 tosses: expect 5000 +- ~500 (10 sigma).
  EXPECT_GT(Heads, 4500);
  EXPECT_LT(Heads, 5500);
}

TEST(Rng, StateRoundTrip) {
  Rng A(5);
  A.next();
  uint64_t S = A.state();
  Rng B;
  B.setState(S);
  EXPECT_EQ(A.next(), B.next());
}

namespace {
struct Base {
  enum class Kind { A, B };
  explicit Base(Kind K) : K(K) {}
  Kind kind() const { return K; }
  Kind K;
};
struct DerivedA : Base {
  DerivedA() : Base(Kind::A) {}
  static bool classof(const Base *B) { return B->kind() == Kind::A; }
};
struct DerivedB : Base {
  DerivedB() : Base(Kind::B) {}
  static bool classof(const Base *B) { return B->kind() == Kind::B; }
};
} // namespace

TEST(Casting, IsaAndDynCast) {
  DerivedA A;
  Base *B = &A;
  EXPECT_TRUE(isa<DerivedA>(B));
  EXPECT_FALSE(isa<DerivedB>(B));
  EXPECT_NE(dyn_cast<DerivedA>(B), nullptr);
  EXPECT_EQ(dyn_cast<DerivedB>(B), nullptr);
  EXPECT_EQ(cast<DerivedA>(B), &A);
}

TEST(Casting, DynCastOrNull) {
  Base *Null = nullptr;
  EXPECT_EQ(dyn_cast_or_null<DerivedA>(Null), nullptr);
  DerivedB BObj;
  Base *B = &BObj;
  EXPECT_EQ(dyn_cast_or_null<DerivedA>(B), nullptr);
  EXPECT_EQ(dyn_cast_or_null<DerivedB>(B), &BObj);
}
