//===- memory_test.cpp - Unit tests for src/interp/Memory ------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Memory.h"

#include <gtest/gtest.h>

using namespace dart;

TEST(Memory, AddressEncoding) {
  Addr A = makeAddr(3, 17);
  EXPECT_EQ(addrRegion(A), 3u);
  EXPECT_EQ(addrOffset(A), 17u);
  EXPECT_FALSE(isNullAddr(A));
  EXPECT_TRUE(isNullAddr(0));
  EXPECT_TRUE(isNullAddr(42)) << "low offsets without a region are NULL+k";
}

TEST(Memory, AllocateZeroFilled) {
  Memory M;
  Addr A = M.allocate(8, RegionKind::Global, "g");
  uint64_t V = 123;
  EXPECT_EQ(M.load(A, 8, V), MemFault::None);
  EXPECT_EQ(V, 0u);
}

TEST(Memory, StoreLoadRoundTrip) {
  Memory M;
  Addr A = M.allocate(16, RegionKind::Heap, "h");
  EXPECT_EQ(M.store(A + 4, 4, 0xdeadbeef), MemFault::None);
  uint64_t V = 0;
  EXPECT_EQ(M.load(A + 4, 4, V), MemFault::None);
  EXPECT_EQ(V, 0xdeadbeefu);
  // Little-endian byte order.
  EXPECT_EQ(M.load(A + 4, 1, V), MemFault::None);
  EXPECT_EQ(V, 0xefu);
}

TEST(Memory, NullDeref) {
  Memory M;
  uint64_t V;
  EXPECT_EQ(M.load(0, 4, V), MemFault::NullDeref);
  EXPECT_EQ(M.store(0, 4, 1), MemFault::NullDeref);
  EXPECT_EQ(M.load(3, 1, V), MemFault::NullDeref) << "NULL + offset";
}

TEST(Memory, OutOfBounds) {
  Memory M;
  Addr A = M.allocate(4, RegionKind::Heap, "h");
  uint64_t V;
  EXPECT_EQ(M.load(A, 4, V), MemFault::None);
  EXPECT_EQ(M.load(A + 1, 4, V), MemFault::OutOfBounds);
  EXPECT_EQ(M.load(A + 4, 1, V), MemFault::OutOfBounds);
  EXPECT_EQ(M.store(A + 4, 1, 0), MemFault::OutOfBounds);
}

TEST(Memory, UseAfterFree) {
  Memory M;
  Addr A = M.allocate(4, RegionKind::Heap, "h");
  EXPECT_EQ(M.free(A), MemFault::None);
  uint64_t V;
  EXPECT_EQ(M.load(A, 4, V), MemFault::UseAfterFree);
  EXPECT_EQ(M.store(A, 4, 0), MemFault::UseAfterFree);
}

TEST(Memory, DoubleFree) {
  Memory M;
  Addr A = M.allocate(4, RegionKind::Heap, "h");
  EXPECT_EQ(M.free(A), MemFault::None);
  EXPECT_EQ(M.free(A), MemFault::DoubleFree);
}

TEST(Memory, FreeNullIsNoOp) {
  Memory M;
  EXPECT_EQ(M.free(0), MemFault::None);
}

TEST(Memory, BadFree) {
  Memory M;
  Addr G = M.allocate(4, RegionKind::Global, "g");
  EXPECT_EQ(M.free(G), MemFault::BadFree);
  Addr H = M.allocate(8, RegionKind::Heap, "h");
  EXPECT_EQ(M.free(H + 4), MemFault::BadFree) << "interior pointer";
}

TEST(Memory, WildPointer) {
  Memory M;
  uint64_t V;
  EXPECT_EQ(M.load(makeAddr(99, 0), 4, V), MemFault::BadRegion);
}

TEST(Memory, ReadOnlyRegion) {
  Memory M;
  Addr A = M.allocate(4, RegionKind::Global, "str", /*ReadOnly=*/true);
  uint64_t V;
  EXPECT_EQ(M.load(A, 4, V), MemFault::None);
  EXPECT_EQ(M.store(A, 4, 1), MemFault::ReadOnlyWrite);
}

TEST(Memory, CopyBetweenRegions) {
  Memory M;
  Addr Src = M.allocate(8, RegionKind::Heap, "src");
  Addr Dst = M.allocate(8, RegionKind::Heap, "dst");
  M.store(Src, 8, 0x1122334455667788ULL);
  EXPECT_EQ(M.copy(Dst, Src, 8), MemFault::None);
  uint64_t V;
  M.load(Dst, 8, V);
  EXPECT_EQ(V, 0x1122334455667788ULL);
}

TEST(Memory, CopyFaults) {
  Memory M;
  Addr A = M.allocate(8, RegionKind::Heap, "a");
  EXPECT_EQ(M.copy(A, 0, 4), MemFault::NullDeref);
  EXPECT_EQ(M.copy(0, A, 4), MemFault::NullDeref);
  EXPECT_EQ(M.copy(A, A + 6, 4), MemFault::OutOfBounds);
}

TEST(Memory, OverlappingCopyIsMemmove) {
  Memory M;
  Addr A = M.allocate(8, RegionKind::Heap, "a");
  for (unsigned I = 0; I < 8; ++I)
    M.store(A + I, 1, I);
  EXPECT_EQ(M.copy(A + 2, A, 4), MemFault::None);
  uint64_t V;
  M.load(A + 2, 1, V);
  EXPECT_EQ(V, 0u);
  M.load(A + 5, 1, V);
  EXPECT_EQ(V, 3u);
}

TEST(Memory, HeapAccounting) {
  Memory M;
  EXPECT_EQ(M.heapBytesInUse(), 0u);
  Addr A = M.allocate(100, RegionKind::Heap, "a");
  M.allocate(50, RegionKind::Global, "g"); // globals don't count
  EXPECT_EQ(M.heapBytesInUse(), 100u);
  M.free(A);
  EXPECT_EQ(M.heapBytesInUse(), 0u);
}

TEST(Memory, StackRelease) {
  Memory M;
  Addr A = M.allocate(4, RegionKind::Stack, "slot");
  M.releaseStack(A);
  uint64_t V;
  EXPECT_EQ(M.load(A, 4, V), MemFault::UseAfterFree)
      << "stale frame pointers fault";
}

TEST(Memory, ZeroSizeRegion) {
  Memory M;
  Addr A = M.allocate(0, RegionKind::Heap, "empty");
  EXPECT_FALSE(isNullAddr(A));
  uint64_t V;
  EXPECT_EQ(M.load(A, 1, V), MemFault::OutOfBounds);
  EXPECT_TRUE(M.isHeapBase(A));
}

TEST(Memory, RegionSizeAndHeapBase) {
  Memory M;
  Addr A = M.allocate(12, RegionKind::Heap, "a");
  EXPECT_EQ(M.regionSize(A), 12u);
  EXPECT_EQ(M.regionSize(A + 3), 12u);
  EXPECT_TRUE(M.isHeapBase(A));
  EXPECT_FALSE(M.isHeapBase(A + 1));
  EXPECT_FALSE(M.isHeapBase(0));
}

TEST(Memory, IsReadable) {
  Memory M;
  Addr A = M.allocate(4, RegionKind::Heap, "a");
  EXPECT_TRUE(M.isReadable(A, 4));
  EXPECT_FALSE(M.isReadable(A, 5));
  EXPECT_FALSE(M.isReadable(0, 1));
}
