//===- memory_test.cpp - Unit tests for src/interp/Memory ------------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Memory.h"

#include <gtest/gtest.h>

#include <vector>

using namespace dart;

TEST(Memory, AddressEncoding) {
  Addr A = makeAddr(3, 17);
  EXPECT_EQ(addrRegion(A), 3u);
  EXPECT_EQ(addrOffset(A), 17u);
  EXPECT_FALSE(isNullAddr(A));
  EXPECT_TRUE(isNullAddr(0));
  EXPECT_TRUE(isNullAddr(42)) << "low offsets without a region are NULL+k";
}

TEST(Memory, AllocateZeroFilled) {
  Memory M;
  Addr A = M.allocate(8, RegionKind::Global, "g");
  uint64_t V = 123;
  EXPECT_EQ(M.load(A, 8, V), MemFault::None);
  EXPECT_EQ(V, 0u);
}

TEST(Memory, StoreLoadRoundTrip) {
  Memory M;
  Addr A = M.allocate(16, RegionKind::Heap, "h");
  EXPECT_EQ(M.store(A + 4, 4, 0xdeadbeef), MemFault::None);
  uint64_t V = 0;
  EXPECT_EQ(M.load(A + 4, 4, V), MemFault::None);
  EXPECT_EQ(V, 0xdeadbeefu);
  // Little-endian byte order.
  EXPECT_EQ(M.load(A + 4, 1, V), MemFault::None);
  EXPECT_EQ(V, 0xefu);
}

TEST(Memory, NullDeref) {
  Memory M;
  uint64_t V;
  EXPECT_EQ(M.load(0, 4, V), MemFault::NullDeref);
  EXPECT_EQ(M.store(0, 4, 1), MemFault::NullDeref);
  EXPECT_EQ(M.load(3, 1, V), MemFault::NullDeref) << "NULL + offset";
}

TEST(Memory, OutOfBounds) {
  Memory M;
  Addr A = M.allocate(4, RegionKind::Heap, "h");
  uint64_t V;
  EXPECT_EQ(M.load(A, 4, V), MemFault::None);
  EXPECT_EQ(M.load(A + 1, 4, V), MemFault::OutOfBounds);
  EXPECT_EQ(M.load(A + 4, 1, V), MemFault::OutOfBounds);
  EXPECT_EQ(M.store(A + 4, 1, 0), MemFault::OutOfBounds);
}

TEST(Memory, UseAfterFree) {
  Memory M;
  Addr A = M.allocate(4, RegionKind::Heap, "h");
  EXPECT_EQ(M.free(A), MemFault::None);
  uint64_t V;
  EXPECT_EQ(M.load(A, 4, V), MemFault::UseAfterFree);
  EXPECT_EQ(M.store(A, 4, 0), MemFault::UseAfterFree);
}

TEST(Memory, DoubleFree) {
  Memory M;
  Addr A = M.allocate(4, RegionKind::Heap, "h");
  EXPECT_EQ(M.free(A), MemFault::None);
  EXPECT_EQ(M.free(A), MemFault::DoubleFree);
}

TEST(Memory, FreeNullIsNoOp) {
  Memory M;
  EXPECT_EQ(M.free(0), MemFault::None);
}

TEST(Memory, BadFree) {
  Memory M;
  Addr G = M.allocate(4, RegionKind::Global, "g");
  EXPECT_EQ(M.free(G), MemFault::BadFree);
  Addr H = M.allocate(8, RegionKind::Heap, "h");
  EXPECT_EQ(M.free(H + 4), MemFault::BadFree) << "interior pointer";
}

TEST(Memory, WildPointer) {
  Memory M;
  uint64_t V;
  EXPECT_EQ(M.load(makeAddr(99, 0), 4, V), MemFault::BadRegion);
}

TEST(Memory, ReadOnlyRegion) {
  Memory M;
  Addr A = M.allocate(4, RegionKind::Global, "str", /*ReadOnly=*/true);
  uint64_t V;
  EXPECT_EQ(M.load(A, 4, V), MemFault::None);
  EXPECT_EQ(M.store(A, 4, 1), MemFault::ReadOnlyWrite);
}

TEST(Memory, CopyBetweenRegions) {
  Memory M;
  Addr Src = M.allocate(8, RegionKind::Heap, "src");
  Addr Dst = M.allocate(8, RegionKind::Heap, "dst");
  M.store(Src, 8, 0x1122334455667788ULL);
  EXPECT_EQ(M.copy(Dst, Src, 8), MemFault::None);
  uint64_t V;
  M.load(Dst, 8, V);
  EXPECT_EQ(V, 0x1122334455667788ULL);
}

TEST(Memory, CopyFaults) {
  Memory M;
  Addr A = M.allocate(8, RegionKind::Heap, "a");
  EXPECT_EQ(M.copy(A, 0, 4), MemFault::NullDeref);
  EXPECT_EQ(M.copy(0, A, 4), MemFault::NullDeref);
  EXPECT_EQ(M.copy(A, A + 6, 4), MemFault::OutOfBounds);
}

TEST(Memory, OverlappingCopyIsMemmove) {
  Memory M;
  Addr A = M.allocate(8, RegionKind::Heap, "a");
  for (unsigned I = 0; I < 8; ++I)
    M.store(A + I, 1, I);
  EXPECT_EQ(M.copy(A + 2, A, 4), MemFault::None);
  uint64_t V;
  M.load(A + 2, 1, V);
  EXPECT_EQ(V, 0u);
  M.load(A + 5, 1, V);
  EXPECT_EQ(V, 3u);
}

TEST(Memory, HeapAccounting) {
  Memory M;
  EXPECT_EQ(M.heapBytesInUse(), 0u);
  Addr A = M.allocate(100, RegionKind::Heap, "a");
  M.allocate(50, RegionKind::Global, "g"); // globals don't count
  EXPECT_EQ(M.heapBytesInUse(), 100u);
  M.free(A);
  EXPECT_EQ(M.heapBytesInUse(), 0u);
}

TEST(Memory, StackRelease) {
  Memory M;
  Addr A = M.allocate(4, RegionKind::Stack, "slot");
  M.releaseStack(A);
  uint64_t V;
  EXPECT_EQ(M.load(A, 4, V), MemFault::UseAfterFree)
      << "stale frame pointers fault";
}

TEST(Memory, ZeroSizeRegion) {
  Memory M;
  Addr A = M.allocate(0, RegionKind::Heap, "empty");
  EXPECT_FALSE(isNullAddr(A));
  uint64_t V;
  EXPECT_EQ(M.load(A, 1, V), MemFault::OutOfBounds);
  EXPECT_TRUE(M.isHeapBase(A));
}

TEST(Memory, RegionSizeAndHeapBase) {
  Memory M;
  Addr A = M.allocate(12, RegionKind::Heap, "a");
  EXPECT_EQ(M.regionSize(A), 12u);
  EXPECT_EQ(M.regionSize(A + 3), 12u);
  EXPECT_TRUE(M.isHeapBase(A));
  EXPECT_FALSE(M.isHeapBase(A + 1));
  EXPECT_FALSE(M.isHeapBase(0));
}

TEST(Memory, IsReadable) {
  Memory M;
  Addr A = M.allocate(4, RegionKind::Heap, "a");
  EXPECT_TRUE(M.isReadable(A, 4));
  EXPECT_FALSE(M.isReadable(A, 5));
  EXPECT_FALSE(M.isReadable(0, 1));
}

TEST(MemoryCow, WriteAfterSnapshotIsolation) {
  Memory M;
  Addr A = M.allocate(8, RegionKind::Heap, "a");
  M.store(A, 8, 0x1111111111111111ULL);
  Memory::Snapshot S = M.snapshot();
  M.store(A, 8, 0x2222222222222222ULL);
  uint64_t V;
  M.load(A, 8, V);
  EXPECT_EQ(V, 0x2222222222222222ULL);
  M.restore(S);
  M.load(A, 8, V);
  EXPECT_EQ(V, 0x1111111111111111ULL) << "snapshot saw the later write";
}

TEST(MemoryCow, SnapshotIsO1UntilWrite) {
  Memory M;
  Addr A = M.allocate(4 * Memory::kPageSize, RegionKind::Heap, "big");
  M.store(A, 8, 7); // materialize one page
  uint64_t PagesBefore = M.cowStats().PageClones;
  Memory::Snapshot S = M.snapshot();
  uint64_t V;
  M.load(A, 8, V); // reads never clone
  EXPECT_EQ(M.cowStats().PageClones, PagesBefore);
  M.store(A, 8, 8); // first write clones exactly one chunk + one page
  EXPECT_EQ(M.cowStats().PageClones, PagesBefore + 1);
  M.store(A + 4, 4, 9); // same page, now exclusively owned: no clone
  EXPECT_EQ(M.cowStats().PageClones, PagesBefore + 1);
  M.restore(S);
  M.load(A, 8, V);
  EXPECT_EQ(V, 7u);
}

TEST(MemoryCow, DeepSnapshotChain) {
  // A chain of snapshots at states 0..N; each must independently preserve
  // its own state, restorable in any order.
  Memory M;
  Addr A = M.allocate(16, RegionKind::Global, "g");
  std::vector<Memory::Snapshot> Chain;
  for (uint64_t I = 0; I < 24; ++I) {
    M.store(A, 8, I);
    M.store(A + 8, 8, I * I);
    Chain.push_back(M.snapshot());
  }
  for (uint64_t I : {23u, 0u, 11u, 17u, 4u, 11u}) {
    M.restore(Chain[I]);
    uint64_t V;
    M.load(A, 8, V);
    EXPECT_EQ(V, I);
    M.load(A + 8, 8, V);
    EXPECT_EQ(V, I * I);
    // Mutating after a restore must not corrupt the chain.
    M.store(A, 8, 999);
  }
}

TEST(MemoryCow, RestoreDropsLaterAllocations) {
  Memory M;
  Addr A = M.allocate(8, RegionKind::Heap, "a");
  Memory::Snapshot S = M.snapshot();
  Addr B = M.allocate(8, RegionKind::Heap, "b");
  EXPECT_EQ(M.numRegions(), 2u);
  EXPECT_EQ(M.heapBytesInUse(), 16u);
  M.restore(S);
  EXPECT_EQ(M.numRegions(), 1u);
  EXPECT_EQ(M.heapBytesInUse(), 8u);
  uint64_t V;
  EXPECT_EQ(M.load(B, 8, V), MemFault::BadRegion)
      << "region allocated after the snapshot must vanish";
  EXPECT_EQ(M.load(A, 8, V), MemFault::None);
}

TEST(MemoryCow, RestoreRevivesFreedRegion) {
  Memory M;
  Addr A = M.allocate(8, RegionKind::Heap, "a");
  Memory::Snapshot S = M.snapshot();
  EXPECT_EQ(M.free(A), MemFault::None);
  uint64_t V;
  EXPECT_EQ(M.load(A, 8, V), MemFault::UseAfterFree);
  M.restore(S);
  EXPECT_EQ(M.load(A, 8, V), MemFault::None) << "snapshot predates the free";
  EXPECT_EQ(M.heapBytesInUse(), 8u);
  // And the converse: a free captured by the snapshot stays freed.
  EXPECT_EQ(M.free(A), MemFault::None);
  Memory::Snapshot S2 = M.snapshot();
  M.restore(S2);
  EXPECT_EQ(M.load(A, 8, V), MemFault::UseAfterFree);
  EXPECT_EQ(M.free(A), MemFault::DoubleFree);
}

TEST(MemoryCow, PageStraddlingAccessUnderSnapshot) {
  Memory M;
  Addr A = M.allocate(2 * Memory::kPageSize, RegionKind::Heap, "straddle");
  Addr Edge = A + Memory::kPageSize - 4; // 8-byte access spans two pages
  M.store(Edge, 8, 0x0102030405060708ULL);
  Memory::Snapshot S = M.snapshot();
  M.store(Edge, 8, 0xf1f2f3f4f5f6f7f8ULL);
  M.restore(S);
  uint64_t V;
  M.load(Edge, 8, V);
  EXPECT_EQ(V, 0x0102030405060708ULL);
  M.load(Edge + 4, 4, V);
  EXPECT_EQ(V, 0x01020304u) << "high half lives on the second page";
}

TEST(MemoryCow, FreshRegionsShareTheZeroPage) {
  Memory M;
  uint64_t Before = M.cowStats().PageClones;
  M.allocate(64 * Memory::kPageSize, RegionKind::Global, "huge");
  EXPECT_EQ(M.cowStats().PageClones, Before)
      << "allocation must not materialize pages";
  uint64_t V;
  Addr A = M.allocate(8, RegionKind::Heap, "a");
  M.load(A, 8, V);
  EXPECT_EQ(V, 0u);
  EXPECT_EQ(M.cowStats().PageClones, Before) << "reads of zero pages are free";
}

TEST(MemoryCow, SnapshotSurvivesSourceMutation) {
  // The pack-sharing pattern: materialize a snapshot into a *different*
  // Memory while the original keeps running.
  Memory M;
  Addr A = M.allocate(8, RegionKind::Heap, "a");
  M.store(A, 8, 42);
  Memory::Snapshot S = M.snapshot();
  M.store(A, 8, 43);
  M.allocate(8, RegionKind::Heap, "later");

  Memory Clone;
  Clone.restore(S);
  uint64_t V;
  Clone.load(A, 8, V);
  EXPECT_EQ(V, 42u);
  EXPECT_EQ(Clone.numRegions(), 1u);
  // Writes in the clone never leak back into M or the snapshot.
  Clone.store(A, 8, 77);
  M.load(A, 8, V);
  EXPECT_EQ(V, 43u);
  Memory Again;
  Again.restore(S);
  Again.load(A, 8, V);
  EXPECT_EQ(V, 42u);
}
