/* Pointer-heavy fixture that must stay finding-free: every value flows
 * through an alias at least once, so a lint pass that ignored points-to
 * facts would report false dead stores and uninitialized reads here.
 * Regression companion of the alias-aware dataflow layer. */

int bias = 3;

int deref(int *p) { return *p; }

void bump(int *p, int by) { *p = *p + by; }

int alias_roundtrip(int n) {
  int cell;
  int *p;
  cell = n + bias; /* only ever read through the alias below */
  p = &cell;
  bump(p, 2);
  return deref(p);
}

int swap_if_greater(int x, int y) {
  int lo;
  int hi;
  int *a;
  int *b;
  int t;
  lo = x;
  hi = y;
  a = &lo;
  b = &hi;
  if (*a > *b) {
    t = *a;
    *a = *b;
    *b = t;
  }
  return lo - hi;
}

int pick_one(int which, int x) {
  int left;
  int right;
  int *sel;
  left = x + 1;
  right = x - 1;
  if (which) {
    sel = &left;
  } else {
    sel = &right;
  }
  *sel = *sel + bias; /* may-alias store: kills no liveness fact */
  return left + right;
}
