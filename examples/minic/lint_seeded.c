/* One seeded defect per lint class, each on a known line. The smoke test
 * expects `dart analyze` to report exactly these (and exit 1 under
 * --exit-code; with --toplevel seeded the dependence layer adds a
 * seventh finding, control-unreachable-bug, on the line-23 assert —
 * no input can steer whether it fires):
 *
 *   line 17  dead store          'unread' is never read
 *   line 18  division by zero    mode - 3 is always 0
 *   line 20  unreachable code    mode == 7 is always false
 *   line 22  uninitialized read  'ghost' read before any assignment
 *   line 23  assertion failure   mode > 5 is always false
 *   line 24  unreachable code    the return after the failing assert
 */
int mode = 3;

int seeded(int x) {
  int unread;
  int ghost;
  int y;
  unread = x + 1;
  y = x / (mode - 3);
  if (mode == 7) {
    y = y + 1;
  }
  ghost = ghost + y;
  assert(mode > 5);
  return y + ghost;
}
