/* A protocol front end whose guard structure is largely decidable at
 * compile time: version/debug gates on initialized globals (untainted
 * conditions) and a range check on a narrow input the interval analysis
 * proves monovalent and wrap-free. With --static-prune on, none of those
 * sites ever reaches the solver; bug sets, models and coverage are
 * identical either way (tests/analysis_test.cpp diff-tests this).
 * Expect lint findings here: the dead gates are real unreachable code. */

int version = 2;
int debug = 0;
int window = 16;

int narrow(char tag) {
  if (tag < 300) {
    return tag + 1;
  }
  return 0;
}

int route(char tag, int len) {
  int acc;
  acc = 0;
  if (version != 2) {
    acc = -1;
  }
  if (debug == 1) {
    acc = acc - 1;
  }
  if (window >= 8) {
    acc = acc + 1;
  }
  if (tag < 300) {
    acc = acc + narrow(tag);
  }
  if (len == 42) {
    acc = acc + 2;
  }
  if (len > 100) {
    if (tag == 7) {
      acc = acc + 3;
    }
  }
  return acc;
}
