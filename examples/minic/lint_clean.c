/* A small accumulator/validator with nothing for `dart analyze` to say:
 * every branch is feasible, every local is assigned before it is read,
 * and every store is read on some path. The zero-findings fixture for
 * the lint smoke test (and a regular concolic workload). */

int limit = 64;

int clamp(int v, int lo, int hi) {
  if (v < lo)
    return lo;
  if (v > hi)
    return hi;
  return v;
}

int checksum(int seed, int n) {
  int acc;
  int i;
  acc = seed;
  i = 0;
  while (i < n) {
    if (i >= limit)
      return acc;
    acc = acc + i;
    i = i + 1;
  }
  return clamp(acc, 0, 1000);
}
