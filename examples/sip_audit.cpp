//===- sip_audit.cpp - Paper §4.3: auditing a library with DART ------------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The oSIP experiment in miniature: treat every exported function of the
// miniSIP library as a toplevel, give DART a 1000-run budget per function,
// and report which functions it can crash and how. This is the workflow
// the paper applied to oSIP's ~600 functions, finding crashes in 65% of
// them (mostly unchecked NULL pointer arguments).
//
//===----------------------------------------------------------------------===//

#include "core/Dart.h"
#include "workloads/Workloads.h"

#include <cstdio>

int main(int argc, char **argv) {
  unsigned Budget = argc > 1 ? static_cast<unsigned>(atoi(argv[1])) : 1000;
  auto D = dart::Dart::fromSource(dart::workloads::miniSipSource());
  if (!D) {
    std::fprintf(stderr, "miniSIP failed to compile\n");
    return 1;
  }

  unsigned Crashed = 0, Total = 0;
  std::printf("%-32s %-10s %s\n", "function", "runs", "result");
  for (const std::string &Fn : D->definedFunctions()) {
    ++Total;
    dart::DartOptions Opts;
    Opts.ToplevelName = Fn;
    Opts.MaxRuns = Budget;
    Opts.Seed = 2005;
    Opts.Interp.MaxSteps = 1u << 18;
    dart::DartReport R = D->run(Opts);
    if (R.BugFound) {
      ++Crashed;
      std::printf("%-32s %-10u CRASH: %s\n", Fn.c_str(), R.Runs,
                  R.Bugs[0].Error.toString().c_str());
    } else {
      std::printf("%-32s %-10u ok%s\n", Fn.c_str(), R.Runs,
                  R.CompleteExploration ? " (all paths explored)" : "");
    }
  }
  std::printf("\n%u/%u functions crashed (%.0f%%); paper: 65%% of oSIP's "
              "~600 functions.\n",
              Crashed, Total, 100.0 * Crashed / Total);
  return 0;
}
