//===- ac_controller.cpp - Paper §4.1: the AC-controller example -----------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The Fig. 6 program: a toy air-conditioning controller driven by integer
// messages. Only messages 0..3 are meaningful; everything else is ignored
// by the input-filtering conditionals — the situation where directed
// search shines and random testing stalls (§4.1's discussion).
//
// At depth 1 no assertion violation exists and DART proves it by complete
// exploration; at depth 2 the sequence (3, 0) — close the door while the
// room is hot, then mark the room hot again without the AC reacting —
// violates the safety assertion.
//
//===----------------------------------------------------------------------===//

#include "core/Dart.h"
#include "workloads/Workloads.h"

#include <cstdio>

int main() {
  auto D = dart::Dart::fromSource(dart::workloads::acControllerSource());
  if (!D) {
    std::fprintf(stderr, "AC-controller failed to compile\n");
    return 1;
  }

  std::printf("== interface ==\n%s\n",
              D->interfaceFor("ac_controller").toString().c_str());
  std::printf("== generated driver (depth 2) ==\n%s\n",
              D->driverSourceFor("ac_controller", 2).c_str());

  for (unsigned Depth = 1; Depth <= 2; ++Depth) {
    dart::DartOptions Opts;
    Opts.ToplevelName = "ac_controller";
    Opts.Depth = Depth;
    Opts.Seed = 2005;
    Opts.MaxRuns = 10000;
    dart::DartReport R = D->run(Opts);
    std::printf("== depth %u ==\n%s\n", Depth, R.toString().c_str());
  }

  std::printf("Paper §4.1: depth 1 -> all paths in 6 iterations, no "
              "error;\n            depth 2 -> assertion violation "
              "(messages 3 then 0) in 7 iterations.\n");
  return 0;
}
