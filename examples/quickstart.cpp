//===- quickstart.cpp - Paper §2.1: the h/f introductory example ----------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The program under test is the paper's first example: `h(x, y)` aborts
// only when x != y and 2*x == x + 10, i.e. x == 10 and y != 10. Random
// testing has a ~2^-32 chance per run of hitting it; DART's directed
// search finds it in two runs: the first gathers the path constraint
// (x0 != y0, 2*x0 != x0 + 10), the second solves the negation of the last
// predicate and drives the program into abort().
//
//===----------------------------------------------------------------------===//

#include "core/Dart.h"

#include <cstdio>

namespace {

const char *Program = R"(
int f(int x) { return 2 * x; }

int h(int x, int y) {
  if (x != y)
    if (f(x) == x + 10)
      abort(); /* error */
  return 0;
}
)";

} // namespace

int main() {
  std::string Errors;
  auto D = dart::Dart::fromSource(Program, &Errors);
  if (!D) {
    std::fprintf(stderr, "compilation failed:\n%s", Errors.c_str());
    return 1;
  }

  // Technique (1): automatically extracted interface.
  std::printf("== extracted interface ==\n%s\n",
              D->interfaceFor("h").toString().c_str());

  // Technique (2): the generated random test driver (paper Fig. 7).
  std::printf("== generated driver ==\n%s\n",
              D->driverSourceFor("h", /*Depth=*/1).c_str());

  // Technique (3): the directed search.
  dart::DartOptions Opts;
  Opts.ToplevelName = "h";
  Opts.Seed = 2005;
  Opts.MaxRuns = 100;
  dart::DartReport Report = D->run(Opts);

  std::printf("== DART session ==\n%s", Report.toString().c_str());
  if (!Report.BugFound) {
    std::printf("expected a bug -- something is wrong\n");
    return 1;
  }
  std::printf("\nDART found the abort in %u runs; paper predicts 2.\n",
              Report.Bugs.front().FoundAtRun);
  return 0;
}
