//===- needham_schroeder.cpp - Paper §4.2: finding Lowe's attack -----------===//
//
// Part of the DART reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Runs DART on the Needham-Schroeder public-key protocol implementation
// with the possibilistic intruder (paper Fig. 9): at depth 2 DART finds
// the projection of Lowe's attack from the responder's point of view —
// steps 2 and 6 of the attack — exactly as §4.2 describes.
//
// The full Dolev-Yao search (Fig. 10, depth 4, minutes of search) is in
// bench/bench_needham_schroeder with DART_BENCH_FULL=1.
//
//===----------------------------------------------------------------------===//

#include "core/Dart.h"
#include "workloads/Workloads.h"

#include <cstdio>

int main() {
  dart::workloads::NsConfig Config; // possibilistic intruder
  auto D = dart::Dart::fromSource(
      dart::workloads::needhamSchroederSource(Config));
  if (!D) {
    std::fprintf(stderr, "Needham-Schroeder failed to compile\n");
    return 1;
  }

  std::printf("Needham-Schroeder protocol, possibilistic intruder.\n"
              "Toplevel: one incoming message (key, d1, d2, d3) per "
              "call.\n\n");

  for (unsigned Depth = 1; Depth <= 2; ++Depth) {
    dart::DartOptions Opts;
    Opts.ToplevelName = "ns_step";
    Opts.Depth = Depth;
    Opts.Seed = 2005;
    Opts.MaxRuns = 200000;
    dart::DartReport R = D->run(Opts);
    std::printf("== depth %u ==\n%s\n", Depth, R.toString().c_str());
    if (R.BugFound) {
      std::printf("The two messages are steps 2 and 6 of Lowe's attack as "
                  "seen by the responder:\n"
                  "  1. {nonce, A}Kb  - the intruder impersonates A\n"
                  "  2. {Nb}Kb        - and completes with B's nonce\n\n");
    }
  }
  std::printf("Paper Fig. 9: depth 1 no error (69 runs); depth 2 error "
              "(664 runs); random search: hours, nothing.\n");
  return 0;
}
